// Package serve answers tuning queries — optimal (s, p) operating
// points and surface slices — strictly from cached experiment
// surfaces.
//
// The server wraps a cache-only engine (engine.Config.CacheOnly): a
// query whose surface rows are in the content-addressed cache is
// answered without recomputing anything, and a query whose rows are
// missing fails with 503 and the list of unpublished jobs — unless the
// engine carries an admission Budget, in which case misses may be
// filled write-through within that budget. Warm surfaces are served
// from a precompacted in-memory snapshot (see store.go): steady-state
// hits never touch the cache at all.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"

	"sensornet/internal/engine"
	"sensornet/internal/experiments"
	"sensornet/internal/optimize"
)

// surfaceState is one preset's serving state: its content digest, the
// ETag tables (pure functions of the digest, computed once at
// construction so even a cold server can answer 304), and the
// snapshot store.
type surfaceState struct {
	name      string // canonical surface= query value
	pre       experiments.Preset
	simulated bool
	digest    string
	store     store[snapshot]
	// optimalETag[metric][rhoIdx], rowETag[rhoIdx], fullETag: the
	// strong validators for every 200 shape this surface can serve.
	optimalETag map[string][]string
	rowETag     []string
	fullETag    string
}

func newSurfaceState(name string, pre experiments.Preset, simulated bool) *surfaceState {
	st := &surfaceState{
		name: name, pre: pre, simulated: simulated,
		digest:      surfaceDigest(pre, simulated),
		optimalETag: make(map[string][]string),
		rowETag:     make([]string, len(pre.Rhos)),
	}
	for _, sel := range optimize.Selectors() {
		tags := make([]string, len(pre.Rhos))
		for i, rho := range pre.Rhos {
			tags[i] = etagOf("optimal", st.digest, sel.Name, rhoKey(rho))
		}
		st.optimalETag[sel.Name] = tags
	}
	for i, rho := range pre.Rhos {
		st.rowETag[i] = etagOf("surface", st.digest, rhoKey(rho))
	}
	st.fullETag = etagOf("surface", st.digest, "all")
	return st
}

// Server is the HTTP query layer over cached surfaces.
//
// Endpoints:
//
//	GET  /healthz                  liveness + cache/snapshot/budget state
//	GET  /api/cache                engine CacheStats counters
//	GET  /api/metrics              the optimisation metric registry
//	GET  /api/optimal?surface=analytic|sim&metric=<name>&rho=<density>
//	GET  /api/surface?surface=analytic|sim[&rho=<density>]
//	POST /api/refresh[?surface=analytic|sim]   rebuild snapshots
type Server struct {
	eng      *engine.Engine
	analytic *surfaceState
	sim      *surfaceState
	shoot    *shootState
	mux      *http.ServeMux
	// baseCtx bounds snapshot builds. Builds are coalesced across
	// requests, so they run on the server's context, not the leader
	// request's: a dropped leader client must not cancel the build its
	// followers are waiting on.
	baseCtx context.Context
}

// Option customises a Server beyond the two surface presets.
type Option func(*options)

type options struct {
	shootRhos []float64
}

// WithShootoutRhos sets the densities of the shootout campaign the
// server publishes on /api/shootout. An empty or absent list picks
// experiments.DefaultShootoutRhos. The list must match what the shard
// or worker processes computed — like the presets, it pins the job
// fingerprints the server reads.
func WithShootoutRhos(rhos []float64) Option {
	return func(o *options) { o.shootRhos = rhos }
}

// New builds a Server over eng on a background base context; see
// NewCtx.
func New(eng *engine.Engine, analytic, sim experiments.Preset, opts ...Option) (*Server, error) {
	return NewCtx(context.Background(), eng, analytic, sim, opts...)
}

// NewCtx builds a Server over eng, which must be cache-only — the
// serving contract is "answers come from the cache, never from
// unbounded recomputation" (an engine.Budget may admit bounded
// write-through fills) — and should carry the same cache (and presets)
// the shard processes populated. ctx bounds coalesced snapshot builds;
// cancel it to abort in-flight builds at shutdown. The shootout
// surface uses the sim preset.
func NewCtx(ctx context.Context, eng *engine.Engine, analytic, sim experiments.Preset, opts ...Option) (*Server, error) {
	if !eng.CacheOnly() {
		return nil, errors.New("serve: engine must be cache-only (engine.Config.CacheOnly)")
	}
	if eng.Shard().Sharded() {
		return nil, errors.New("serve: engine must be unsharded: serving reads every shard's cached rows")
	}
	var o options
	for _, opt := range opts {
		opt(&o)
	}
	s := &Server{
		eng:      eng,
		analytic: newSurfaceState("analytic", analytic, false),
		sim:      newSurfaceState("sim", sim, true),
		shoot:    newShootState(sim, o.shootRhos),
		mux:      http.NewServeMux(),
		baseCtx:  ctx,
	}
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /api/cache", s.handleCache)
	s.mux.HandleFunc("GET /api/metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /api/optimal", s.handleOptimal)
	s.mux.HandleFunc("GET /api/surface", s.handleSurface)
	s.mux.HandleFunc("GET /api/shootout", s.handleShootout)
	s.mux.HandleFunc("POST /api/refresh", s.handleRefresh)
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Warm eagerly builds every snapshot — both surfaces and the shootout
// — so a server started over a populated cache pays its cache reads
// before the first request. Surfaces whose rows are not yet published
// are left cold (their requests keep retrying); the first error is
// returned for logging.
func (s *Server) Warm(ctx context.Context) error {
	var firstErr error
	for _, st := range []*surfaceState{s.analytic, s.sim} {
		if _, err := st.store.build(ctx, func() (*snapshot, error) {
			return s.loadSnapshot(ctx, st)
		}, false); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if _, err := s.shoot.store.build(ctx, func() (*shootSnapshot, error) {
		return s.loadShootout(ctx)
	}, false); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}

// loadSnapshot runs the engine load for one surface and compacts it.
func (s *Server) loadSnapshot(ctx context.Context, st *surfaceState) (*snapshot, error) {
	var surf *experiments.Surface
	var err error
	if st.simulated {
		surf, err = experiments.SimSurfaceCtx(ctx, s.eng, st.pre)
	} else {
		surf, err = experiments.AnalyticSurfaceCtx(ctx, s.eng, st.pre)
	}
	if err != nil {
		return nil, err
	}
	return buildSnapshot(st.name, surf)
}

// snapshot returns st's published snapshot, building it (coalesced
// across concurrent cold requests) when necessary. The build runs on
// the server's base context; the request context only bounds this
// caller's wait.
func (s *Server) snapshot(r *http.Request, st *surfaceState) (*snapshot, error) {
	if snap := st.store.get(); snap != nil {
		return snap, nil
	}
	return st.store.build(r.Context(), func() (*snapshot, error) {
		return s.loadSnapshot(s.baseCtx, st)
	}, false)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	//lint:ignore errdrop the status line is already out; nothing to recover, the client sees a truncated body
	_ = enc.Encode(v)
}

// writeRaw sends a pre-encoded JSON body (see encodeJSON for the byte
// contract shared with writeJSON).
func writeRaw(w http.ResponseWriter, status int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(body)
}

type errorBody struct {
	Error string `json:"error"`
	// MissingJobs lists unpublished cache entries on a 503 (capped).
	MissingJobs []string `json:"missingJobs,omitempty"`
}

// fail maps an error onto the API's status contract: a cache-only
// MissingError is 503 Service Unavailable (the data may simply not be
// published yet), everything else is the given fallback status.
func fail(w http.ResponseWriter, err error, fallback int) {
	var missing *engine.MissingError
	if errors.As(err, &missing) {
		body := errorBody{Error: missing.Error()}
		const maxListed = 20
		for i, j := range missing.Jobs {
			if i == maxListed {
				body.MissingJobs = append(body.MissingJobs, "...")
				break
			}
			body.MissingJobs = append(body.MissingJobs, j.Name)
		}
		writeJSON(w, http.StatusServiceUnavailable, body)
		return
	}
	writeJSON(w, fallback, errorBody{Error: err.Error()})
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	body := map[string]any{
		"status":    "ok",
		"cacheOnly": true,
		"hasCache":  s.eng.Cache() != nil,
		"snapshots": map[string]bool{
			"analytic": s.analytic.store.get() != nil,
			"sim":      s.sim.store.get() != nil,
			"shootout": s.shoot.store.get() != nil,
		},
	}
	if b := s.eng.Budget(); b != nil {
		body["budget"] = b.Stats()
	}
	writeJSON(w, http.StatusOK, body)
}

func (s *Server) handleCache(w http.ResponseWriter, r *http.Request) {
	c := s.eng.Cache()
	if c == nil {
		fail(w, errors.New("serve: no cache configured"), http.StatusServiceUnavailable)
		return
	}
	writeJSON(w, http.StatusOK, c.Stats())
}

type metricBody struct {
	Name        string `json:"name"`
	Description string `json:"description"`
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	sels := optimize.Selectors()
	out := make([]metricBody, len(sels))
	for i, sel := range sels {
		out[i] = metricBody{Name: sel.Name, Description: sel.Description}
	}
	writeJSON(w, http.StatusOK, out)
}

// refreshResult reports one surface's rebuild outcome.
type refreshResult struct {
	Surface     string   `json:"surface"`
	OK          bool     `json:"ok"`
	Error       string   `json:"error,omitempty"`
	MissingJobs []string `json:"missingJobs,omitempty"`
}

// refreshTarget is one rebuildable snapshot: the (ρ, p) surfaces and
// the shootout share the refresh endpoint through it.
type refreshTarget struct {
	name    string
	rebuild func(ctx context.Context) error
}

// refreshTargets lists every snapshot /api/refresh can rebuild, in
// response order.
func (s *Server) refreshTargets() []refreshTarget {
	targets := make([]refreshTarget, 0, 3)
	for _, st := range []*surfaceState{s.analytic, s.sim} {
		st := st
		targets = append(targets, refreshTarget{name: st.name,
			rebuild: func(ctx context.Context) error {
				_, err := st.store.build(ctx, func() (*snapshot, error) {
					return s.loadSnapshot(s.baseCtx, st)
				}, true)
				return err
			}})
	}
	targets = append(targets, refreshTarget{name: "shootout",
		rebuild: func(ctx context.Context) error {
			_, err := s.shoot.store.build(ctx, func() (*shootSnapshot, error) {
				return s.loadShootout(s.baseCtx)
			}, true)
			return err
		}})
	return targets
}

// handleRefresh forces snapshot rebuilds — after shards publish new
// rows, hit this instead of restarting the server. A failed rebuild
// keeps the last good snapshot published. Refreshing every snapshot is
// the default; surface=analytic|sim|shootout narrows it.
func (s *Server) handleRefresh(w http.ResponseWriter, r *http.Request) {
	targets := s.refreshTargets()
	if name := r.URL.Query().Get("surface"); name != "" {
		found := false
		for _, t := range targets {
			if t.name == name {
				targets, found = []refreshTarget{t}, true
				break
			}
		}
		if !found {
			fail(w, fmt.Errorf("serve: surface=%q: want analytic, sim or shootout", name), http.StatusBadRequest)
			return
		}
	}
	status := http.StatusOK
	out := make([]refreshResult, len(targets))
	for i, t := range targets {
		res := refreshResult{Surface: t.name, OK: true}
		if err := t.rebuild(r.Context()); err != nil {
			status = http.StatusServiceUnavailable
			res.OK = false
			res.Error = err.Error()
			var missing *engine.MissingError
			if errors.As(err, &missing) {
				const maxListed = 20
				for j, job := range missing.Jobs {
					if j == maxListed {
						res.MissingJobs = append(res.MissingJobs, "...")
						break
					}
					res.MissingJobs = append(res.MissingJobs, job.Name)
				}
			}
		}
		out[i] = res
	}
	writeJSON(w, status, out)
}

// surfaceState resolves a surface= value.
func (s *Server) surfaceState(name string) (*surfaceState, error) {
	switch name {
	case "analytic":
		return s.analytic, nil
	case "sim":
		return s.sim, nil
	default:
		return nil, fmt.Errorf("serve: surface=%q: want analytic or sim", name)
	}
}

// rhoIndex finds the row index of the queried density. Densities are
// preset grid values echoed back by clients, so matching is by small
// absolute tolerance rather than float equality.
func rhoIndex(pre experiments.Preset, rho float64) (int, bool) {
	return rhoIndexIn(pre.Rhos, rho)
}

func rhoIndexIn(rhos []float64, rho float64) (int, bool) {
	for i, r := range rhos {
		if math.Abs(r-rho) < 1e-9 {
			return i, true
		}
	}
	return 0, false
}

func parseRho(r *http.Request) (float64, error) {
	raw := r.URL.Query().Get("rho")
	if raw == "" {
		return 0, errors.New("serve: missing rho parameter")
	}
	rho, err := strconv.ParseFloat(raw, 64)
	if err != nil {
		return 0, fmt.Errorf("serve: rho=%q: %v", raw, err)
	}
	// ParseFloat accepts "NaN" and "Inf", which can never match a grid
	// density: reject them here with a clear 400 instead of letting them
	// fall through to a confusing unknown-rho 404.
	if math.IsNaN(rho) || math.IsInf(rho, 0) {
		return 0, fmt.Errorf("serve: rho=%q: must be a finite number", raw)
	}
	return rho, nil
}

// optimalBody is the answer to a tuning query: the (s, p) operating
// point optimising the metric at the density, and the achieved value.
// Rho echoes the preset's canonical density (the one the query matched
// within tolerance), keeping the body a pure function of the ETag.
type optimalBody struct {
	Surface string  `json:"surface"`
	Metric  string  `json:"metric"`
	Rho     float64 `json:"rho"`
	S       int     `json:"s"`
	P       float64 `json:"p"`
	Value   float64 `json:"value"`
}

func (s *Server) handleOptimal(w http.ResponseWriter, r *http.Request) {
	sel, ok := optimize.SelectorByName(r.URL.Query().Get("metric"))
	if !ok {
		fail(w, fmt.Errorf("serve: unknown metric %q (see /api/metrics)", r.URL.Query().Get("metric")), http.StatusBadRequest)
		return
	}
	rho, err := parseRho(r)
	if err != nil {
		fail(w, err, http.StatusBadRequest)
		return
	}
	st, err := s.surfaceState(r.URL.Query().Get("surface"))
	if err != nil {
		fail(w, err, http.StatusBadRequest)
		return
	}
	idx, ok := rhoIndex(st.pre, rho)
	if !ok {
		fail(w, fmt.Errorf("serve: rho=%g not in the preset densities %v", rho, st.pre.Rhos), http.StatusNotFound)
		return
	}
	// The answer is a pure function of the surface digest, the metric,
	// and the density — so a validator match proves the client already
	// has it, before touching the snapshot (or, cold, the cache).
	etag := st.optimalETag[sel.Name][idx]
	if notModified(w, r, etag) {
		return
	}
	snap, err := s.snapshot(r, st)
	if err != nil {
		fail(w, err, http.StatusBadRequest)
		return
	}
	if !snap.optima[sel.Name][idx].ok {
		fail(w, fmt.Errorf("serve: no feasible grid point for metric %q at rho=%g", sel.Name, rho), http.StatusNotFound)
		return
	}
	w.Header().Set("ETag", etag)
	writeRaw(w, http.StatusOK, snap.optimalBody[sel.Name][idx])
}

// pointBody is the NaN-safe JSON shape of one surface point:
// infeasible constrained metrics serialise as null.
type pointBody struct {
	P             float64  `json:"p"`
	ReachAtL      *float64 `json:"reachAtL"`
	Latency       *float64 `json:"latency"`
	Broadcasts    *float64 `json:"broadcasts"`
	ReachAtBudget *float64 `json:"reachAtBudget"`
	SuccessRate   *float64 `json:"successRate"`
	Final         *float64 `json:"final"`
}

func nullable(x float64) *float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return nil
	}
	return &x
}

func pointsBody(pts []optimize.Point) []pointBody {
	out := make([]pointBody, len(pts))
	for i, pt := range pts {
		out[i] = pointBody{
			P:             pt.P,
			ReachAtL:      nullable(pt.ReachAtL),
			Latency:       nullable(pt.Latency),
			Broadcasts:    nullable(pt.Broadcasts),
			ReachAtBudget: nullable(pt.ReachAtBudget),
			SuccessRate:   nullable(pt.SuccessRate),
			Final:         nullable(pt.Final),
		}
	}
	return out
}

type surfaceBody struct {
	Surface string        `json:"surface"`
	S       int           `json:"s"`
	Rhos    []float64     `json:"rhos"`
	Rows    [][]pointBody `json:"rows"`
}

func (s *Server) handleSurface(w http.ResponseWriter, r *http.Request) {
	st, err := s.surfaceState(r.URL.Query().Get("surface"))
	if err != nil {
		fail(w, err, http.StatusBadRequest)
		return
	}
	rowIdx, hasRho := -1, false
	if raw := r.URL.Query().Get("rho"); raw != "" {
		rho, err := parseRho(r)
		if err != nil {
			fail(w, err, http.StatusBadRequest)
			return
		}
		idx, ok := rhoIndex(st.pre, rho)
		if !ok {
			fail(w, fmt.Errorf("serve: rho=%g not in the preset densities %v", rho, st.pre.Rhos), http.StatusNotFound)
			return
		}
		rowIdx, hasRho = idx, true
	}
	etag := st.fullETag
	if hasRho {
		etag = st.rowETag[rowIdx]
	}
	if notModified(w, r, etag) {
		return
	}
	snap, err := s.snapshot(r, st)
	if err != nil {
		fail(w, err, http.StatusBadRequest)
		return
	}
	body := snap.fullBody
	if hasRho {
		body = snap.rowBody[rowIdx]
	}
	w.Header().Set("ETag", etag)
	writeRaw(w, http.StatusOK, body)
}
