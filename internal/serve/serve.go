// Package serve answers tuning queries — optimal (s, p) operating
// points and surface slices — strictly from cached experiment
// surfaces.
//
// The server wraps a cache-only engine (engine.Config.CacheOnly): a
// query whose surface rows are in the content-addressed cache is
// answered without recomputing anything, and a query whose rows are
// missing fails with 503 and the list of unpublished jobs, never by
// silently recomputing shard work in the serving process. Handlers run
// on the request context, so a dropped client cancels the cache load.
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"

	"sensornet/internal/engine"
	"sensornet/internal/experiments"
	"sensornet/internal/optimize"
)

// Server is the HTTP query layer over cached surfaces.
//
// Endpoints:
//
//	GET /healthz                  liveness + cache configuration
//	GET /api/cache                engine CacheStats counters
//	GET /api/metrics              the optimisation metric registry
//	GET /api/optimal?surface=analytic|sim&metric=<name>&rho=<density>
//	GET /api/surface?surface=analytic|sim[&rho=<density>]
type Server struct {
	eng      *engine.Engine
	analytic experiments.Preset
	sim      experiments.Preset
	mux      *http.ServeMux
	// analyticDigest/simDigest are the content-addressed identities of
	// the two surfaces (hashed job fingerprints), precomputed once and
	// mixed into every ETag (see etag.go).
	analyticDigest, simDigest string
}

// New builds a Server over eng, which must be cache-only — the
// serving contract is "answers come from the cache, never from
// recomputation" — and should carry the same cache (and presets) the
// shard processes populated.
func New(eng *engine.Engine, analytic, sim experiments.Preset) (*Server, error) {
	if !eng.CacheOnly() {
		return nil, errors.New("serve: engine must be cache-only (engine.Config.CacheOnly)")
	}
	if eng.Shard().Sharded() {
		return nil, errors.New("serve: engine must be unsharded: serving reads every shard's cached rows")
	}
	s := &Server{
		eng: eng, analytic: analytic, sim: sim, mux: http.NewServeMux(),
		analyticDigest: surfaceDigest(analytic, false),
		simDigest:      surfaceDigest(sim, true),
	}
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /api/cache", s.handleCache)
	s.mux.HandleFunc("GET /api/metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /api/optimal", s.handleOptimal)
	s.mux.HandleFunc("GET /api/surface", s.handleSurface)
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	//lint:ignore errdrop the status line is already out; nothing to recover, the client sees a truncated body
	_ = enc.Encode(v)
}

type errorBody struct {
	Error string `json:"error"`
	// MissingJobs lists unpublished cache entries on a 503 (capped).
	MissingJobs []string `json:"missingJobs,omitempty"`
}

// fail maps an error onto the API's status contract: a cache-only
// MissingError is 503 Service Unavailable (the data may simply not be
// published yet), everything else is the given fallback status.
func fail(w http.ResponseWriter, err error, fallback int) {
	var missing *engine.MissingError
	if errors.As(err, &missing) {
		body := errorBody{Error: missing.Error()}
		const maxListed = 20
		for i, j := range missing.Jobs {
			if i == maxListed {
				body.MissingJobs = append(body.MissingJobs, "...")
				break
			}
			body.MissingJobs = append(body.MissingJobs, j.Name)
		}
		writeJSON(w, http.StatusServiceUnavailable, body)
		return
	}
	writeJSON(w, fallback, errorBody{Error: err.Error()})
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":    "ok",
		"cacheOnly": true,
		"hasCache":  s.eng.Cache() != nil,
	})
}

func (s *Server) handleCache(w http.ResponseWriter, r *http.Request) {
	c := s.eng.Cache()
	if c == nil {
		fail(w, errors.New("serve: no cache configured"), http.StatusServiceUnavailable)
		return
	}
	writeJSON(w, http.StatusOK, c.Stats())
}

type metricBody struct {
	Name        string `json:"name"`
	Description string `json:"description"`
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	sels := optimize.Selectors()
	out := make([]metricBody, len(sels))
	for i, sel := range sels {
		out[i] = metricBody{Name: sel.Name, Description: sel.Description}
	}
	writeJSON(w, http.StatusOK, out)
}

// preset resolves the surface= query parameter.
func (s *Server) preset(r *http.Request) (experiments.Preset, bool, error) {
	switch name := r.URL.Query().Get("surface"); name {
	case "analytic":
		return s.analytic, false, nil
	case "sim":
		return s.sim, true, nil
	default:
		return experiments.Preset{}, false, fmt.Errorf("serve: surface=%q: want analytic or sim", name)
	}
}

// digest returns the precomputed content identity of a surface.
func (s *Server) digest(simulated bool) string {
	if simulated {
		return s.simDigest
	}
	return s.analyticDigest
}

// loadSurface loads a surface entirely from the cache.
func (s *Server) loadSurface(r *http.Request, pre experiments.Preset, simulated bool) (*experiments.Surface, error) {
	if simulated {
		return experiments.SimSurfaceCtx(r.Context(), s.eng, pre)
	}
	return experiments.AnalyticSurfaceCtx(r.Context(), s.eng, pre)
}

// rhoIndex finds the row index of the queried density. Densities are
// preset grid values echoed back by clients, so matching is by small
// absolute tolerance rather than float equality.
func rhoIndex(pre experiments.Preset, rho float64) (int, bool) {
	for i, r := range pre.Rhos {
		if math.Abs(r-rho) < 1e-9 {
			return i, true
		}
	}
	return 0, false
}

func parseRho(r *http.Request) (float64, error) {
	raw := r.URL.Query().Get("rho")
	if raw == "" {
		return 0, errors.New("serve: missing rho parameter")
	}
	rho, err := strconv.ParseFloat(raw, 64)
	if err != nil {
		return 0, fmt.Errorf("serve: rho=%q: %v", raw, err)
	}
	return rho, nil
}

// optimalBody is the answer to a tuning query: the (s, p) operating
// point optimising the metric at the density, and the achieved value.
type optimalBody struct {
	Surface string  `json:"surface"`
	Metric  string  `json:"metric"`
	Rho     float64 `json:"rho"`
	S       int     `json:"s"`
	P       float64 `json:"p"`
	Value   float64 `json:"value"`
}

func (s *Server) handleOptimal(w http.ResponseWriter, r *http.Request) {
	sel, ok := optimize.SelectorByName(r.URL.Query().Get("metric"))
	if !ok {
		fail(w, fmt.Errorf("serve: unknown metric %q (see /api/metrics)", r.URL.Query().Get("metric")), http.StatusBadRequest)
		return
	}
	rho, err := parseRho(r)
	if err != nil {
		fail(w, err, http.StatusBadRequest)
		return
	}
	pre, simulated, err := s.preset(r)
	if err != nil {
		fail(w, err, http.StatusBadRequest)
		return
	}
	idx, ok := rhoIndex(pre, rho)
	if !ok {
		fail(w, fmt.Errorf("serve: rho=%g not in the preset densities %v", rho, pre.Rhos), http.StatusNotFound)
		return
	}
	// The answer is a pure function of the surface digest, the metric,
	// and the density — so a validator match proves the client already
	// has it, before a single cache read.
	etag := etagOf("optimal", s.digest(simulated), sel.Name, rhoKey(rho))
	if notModified(w, r, etag) {
		return
	}
	surf, err := s.loadSurface(r, pre, simulated)
	if err != nil {
		fail(w, err, http.StatusBadRequest)
		return
	}
	opt, ok := sel.Pick(surf.Points[idx])
	if !ok {
		fail(w, fmt.Errorf("serve: no feasible grid point for metric %q at rho=%g", sel.Name, rho), http.StatusNotFound)
		return
	}
	w.Header().Set("ETag", etag)
	writeJSON(w, http.StatusOK, optimalBody{
		Surface: r.URL.Query().Get("surface"),
		Metric:  sel.Name,
		Rho:     rho,
		S:       pre.S,
		P:       opt.P,
		Value:   opt.Value,
	})
}

// pointBody is the NaN-safe JSON shape of one surface point:
// infeasible constrained metrics serialise as null.
type pointBody struct {
	P             float64  `json:"p"`
	ReachAtL      *float64 `json:"reachAtL"`
	Latency       *float64 `json:"latency"`
	Broadcasts    *float64 `json:"broadcasts"`
	ReachAtBudget *float64 `json:"reachAtBudget"`
	SuccessRate   *float64 `json:"successRate"`
	Final         *float64 `json:"final"`
}

func nullable(x float64) *float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return nil
	}
	return &x
}

func pointsBody(pts []optimize.Point) []pointBody {
	out := make([]pointBody, len(pts))
	for i, pt := range pts {
		out[i] = pointBody{
			P:             pt.P,
			ReachAtL:      nullable(pt.ReachAtL),
			Latency:       nullable(pt.Latency),
			Broadcasts:    nullable(pt.Broadcasts),
			ReachAtBudget: nullable(pt.ReachAtBudget),
			SuccessRate:   nullable(pt.SuccessRate),
			Final:         nullable(pt.Final),
		}
	}
	return out
}

type surfaceBody struct {
	Surface string        `json:"surface"`
	S       int           `json:"s"`
	Rhos    []float64     `json:"rhos"`
	Rows    [][]pointBody `json:"rows"`
}

func (s *Server) handleSurface(w http.ResponseWriter, r *http.Request) {
	pre, simulated, err := s.preset(r)
	if err != nil {
		fail(w, err, http.StatusBadRequest)
		return
	}
	rowIdx, hasRho := -1, false
	if raw := r.URL.Query().Get("rho"); raw != "" {
		rho, err := parseRho(r)
		if err != nil {
			fail(w, err, http.StatusBadRequest)
			return
		}
		idx, ok := rhoIndex(pre, rho)
		if !ok {
			fail(w, fmt.Errorf("serve: rho=%g not in the preset densities %v", rho, pre.Rhos), http.StatusNotFound)
			return
		}
		rowIdx, hasRho = idx, true
	}
	rhoPart := "all"
	if hasRho {
		rhoPart = rhoKey(pre.Rhos[rowIdx])
	}
	etag := etagOf("surface", s.digest(simulated), rhoPart)
	if notModified(w, r, etag) {
		return
	}
	surf, err := s.loadSurface(r, pre, simulated)
	if err != nil {
		fail(w, err, http.StatusBadRequest)
		return
	}
	body := surfaceBody{Surface: r.URL.Query().Get("surface"), S: pre.S}
	if hasRho {
		body.Rhos = []float64{pre.Rhos[rowIdx]}
		body.Rows = [][]pointBody{pointsBody(surf.Points[rowIdx])}
	} else {
		body.Rhos = pre.Rhos
		for _, row := range surf.Points {
			body.Rows = append(body.Rows, pointsBody(row))
		}
	}
	w.Header().Set("ETag", etag)
	writeJSON(w, http.StatusOK, body)
}
