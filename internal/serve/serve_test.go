// Serving-mode tests: the acceptance property is that tuning queries
// are answered entirely from the shared cache — zero recomputed jobs,
// asserted through engine CacheStats — and that unpublished surfaces
// fail with 503 instead of silently recomputing.
package serve_test

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"sensornet/internal/engine"
	"sensornet/internal/experiments"
	"sensornet/internal/serve"
)

func testPresets() (experiments.Preset, experiments.Preset) {
	pa := experiments.QuickAnalytic()
	pa.Rhos = []float64{40, 100}
	ps := experiments.QuickSim()
	ps.Rhos = []float64{30, 80}
	ps.Grid = []float64{0.05, 0.2, 0.6, 1}
	ps.Runs = 3
	return pa, ps
}

// warmCache computes both presets' surface jobs into dir, exactly as
// shard processes would.
func warmCache(t *testing.T, dir string, pa, ps experiments.Preset) {
	t.Helper()
	eng := engine.New(engine.Config{Workers: 4,
		Cache: engine.NewCache(dir, experiments.CacheSalt)})
	jobs := experiments.SurfaceJobs(pa, false, 4)
	jobs = append(jobs, experiments.SurfaceJobs(ps, true, 4)...)
	if _, err := eng.Run(context.Background(), jobs); err != nil {
		t.Fatal(err)
	}
}

// newServer builds a cache-only server over dir and returns the cache
// whose stats prove (non-)recomputation.
func newServer(t *testing.T, dir string) (*serve.Server, *engine.Cache) {
	t.Helper()
	pa, ps := testPresets()
	cache := engine.NewCache(dir, experiments.CacheSalt)
	eng := engine.New(engine.Config{Workers: 4, Cache: cache, CacheOnly: true})
	srv, err := serve.New(eng, pa, ps)
	if err != nil {
		t.Fatal(err)
	}
	return srv, cache
}

// get performs one request and decodes the JSON body into out.
func get(t *testing.T, srv *serve.Server, url string, out any) int {
	t.Helper()
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("GET", url, nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("GET %s: Content-Type = %q", url, ct)
	}
	if out != nil {
		if err := json.Unmarshal(rec.Body.Bytes(), out); err != nil {
			t.Fatalf("GET %s: bad JSON %q: %v", url, rec.Body.String(), err)
		}
	}
	return rec.Code
}

func TestServeRejectsWrongEngines(t *testing.T) {
	pa, ps := testPresets()
	if _, err := serve.New(engine.New(engine.Config{Workers: 1}), pa, ps); err == nil {
		t.Error("New accepted a computing (non-cache-only) engine")
	}
	if _, err := serve.New(engine.New(engine.Config{Workers: 1, CacheOnly: true,
		Shard: engine.ShardSpec{Index: 0, Total: 2}}), pa, ps); err == nil {
		t.Error("New accepted a sharded engine")
	}
}

// TestServeOptimalFromCacheOnly is the acceptance property: an
// optimal-(s, p) query against a warmed cache answers 200 with a grid
// point, and the engine recomputes zero jobs doing so.
func TestServeOptimalFromCacheOnly(t *testing.T) {
	if testing.Short() {
		t.Skip("simulated warm-up in -short mode")
	}
	dir := t.TempDir()
	pa, ps := testPresets()
	warmCache(t, dir, pa, ps)
	srv, cache := newServer(t, dir)

	var body struct {
		Metric string  `json:"metric"`
		Rho    float64 `json:"rho"`
		S      int     `json:"s"`
		P      float64 `json:"p"`
		Value  float64 `json:"value"`
	}
	for _, q := range []string{
		"/api/optimal?surface=analytic&metric=reach&rho=40",
		"/api/optimal?surface=analytic&metric=energy&rho=100",
		"/api/optimal?surface=sim&metric=reach&rho=30",
	} {
		if code := get(t, srv, q, &body); code != http.StatusOK {
			t.Fatalf("GET %s: status %d", q, code)
		}
		if body.P <= 0 || body.P > 1 {
			t.Fatalf("GET %s: optimal p = %g not a grid probability", q, body.P)
		}
		if body.S <= 0 {
			t.Fatalf("GET %s: s = %d", q, body.S)
		}
	}
	if cs := cache.Stats(); cs.Misses != 0 || cs.Stores != 0 {
		t.Fatalf("serving recomputed jobs: cache stats %+v, want 0 misses and 0 stores", cs)
	}
}

func TestServeSurfaceFullAndSlice(t *testing.T) {
	if testing.Short() {
		t.Skip("simulated warm-up in -short mode")
	}
	dir := t.TempDir()
	pa, ps := testPresets()
	warmCache(t, dir, pa, ps)
	srv, cache := newServer(t, dir)

	var body struct {
		S    int       `json:"s"`
		Rhos []float64 `json:"rhos"`
		Rows [][]struct {
			P        float64  `json:"p"`
			ReachAtL *float64 `json:"reachAtL"`
		} `json:"rows"`
	}
	if code := get(t, srv, "/api/surface?surface=analytic", &body); code != http.StatusOK {
		t.Fatalf("full surface: status %d", code)
	}
	if len(body.Rhos) != len(pa.Rhos) || len(body.Rows) != len(pa.Rhos) {
		t.Fatalf("full surface: %d rhos / %d rows, want %d", len(body.Rhos), len(body.Rows), len(pa.Rhos))
	}
	if len(body.Rows[0]) != len(pa.Grid) {
		t.Fatalf("surface row has %d points, want the %d-point grid", len(body.Rows[0]), len(pa.Grid))
	}

	if code := get(t, srv, "/api/surface?surface=analytic&rho=100", &body); code != http.StatusOK {
		t.Fatalf("surface slice: status %d", code)
	}
	if len(body.Rows) != 1 || len(body.Rhos) != 1 || body.Rhos[0] != 100 {
		t.Fatalf("surface slice: rhos %v with %d rows, want the single rho=100 row", body.Rhos, len(body.Rows))
	}
	if cs := cache.Stats(); cs.Misses != 0 || cs.Stores != 0 {
		t.Fatalf("serving recomputed jobs: cache stats %+v", cs)
	}
}

func TestServeHealthCacheAndMetrics(t *testing.T) {
	srv, _ := newServer(t, t.TempDir())

	var health struct {
		Status    string `json:"status"`
		CacheOnly bool   `json:"cacheOnly"`
		HasCache  bool   `json:"hasCache"`
	}
	if code := get(t, srv, "/healthz", &health); code != http.StatusOK {
		t.Fatalf("healthz: status %d", code)
	}
	if health.Status != "ok" || !health.CacheOnly || !health.HasCache {
		t.Fatalf("healthz: %+v", health)
	}

	if code := get(t, srv, "/api/cache", &struct{}{}); code != http.StatusOK {
		t.Fatalf("/api/cache: status %d", code)
	}

	var metrics []struct {
		Name        string `json:"name"`
		Description string `json:"description"`
	}
	if code := get(t, srv, "/api/metrics", &metrics); code != http.StatusOK {
		t.Fatalf("/api/metrics: status %d", code)
	}
	want := map[string]bool{"reach": true, "latency": true, "energy": true, "budget": true}
	if len(metrics) != len(want) {
		t.Fatalf("metrics = %+v, want the four paper metrics", metrics)
	}
	for _, m := range metrics {
		if !want[m.Name] || m.Description == "" {
			t.Fatalf("metric %+v unexpected or undocumented", m)
		}
	}
}

// TestServeEmptyCache503 pins the no-silent-recompute contract: with
// nothing published, queries fail 503 and name the missing jobs rather
// than computing them.
func TestServeEmptyCache503(t *testing.T) {
	srv, cache := newServer(t, t.TempDir())

	var body struct {
		Error       string   `json:"error"`
		MissingJobs []string `json:"missingJobs"`
	}
	if code := get(t, srv, "/api/optimal?surface=analytic&metric=reach&rho=40", &body); code != http.StatusServiceUnavailable {
		t.Fatalf("optimal on empty cache: status %d, want 503", code)
	}
	if body.Error == "" || len(body.MissingJobs) == 0 {
		t.Fatalf("503 body %+v does not name the unpublished jobs", body)
	}
	if code := get(t, srv, "/api/surface?surface=sim", nil); code != http.StatusServiceUnavailable {
		t.Fatalf("surface on empty cache: status %d, want 503", code)
	}
	if cs := cache.Stats(); cs.Stores != 0 {
		t.Fatalf("empty-cache queries computed and stored jobs: stats %+v", cs)
	}
}

func TestServeBadParams(t *testing.T) {
	srv, _ := newServer(t, t.TempDir())
	for _, tc := range []struct {
		url  string
		want int
	}{
		{"/api/optimal?surface=analytic&metric=nope&rho=40", http.StatusBadRequest},
		{"/api/optimal?surface=analytic&metric=reach", http.StatusBadRequest},
		{"/api/optimal?surface=analytic&metric=reach&rho=abc", http.StatusBadRequest},
		{"/api/optimal?surface=nope&metric=reach&rho=40", http.StatusBadRequest},
		{"/api/surface?surface=nope", http.StatusBadRequest},
		{"/api/optimal?metric=reach&rho=40", http.StatusBadRequest},
		// ParseFloat accepts these spellings, but a non-finite rho can
		// never match a grid density: 400, not a confusing 404.
		{"/api/optimal?surface=analytic&metric=reach&rho=NaN", http.StatusBadRequest},
		{"/api/optimal?surface=analytic&metric=reach&rho=Inf", http.StatusBadRequest},
		{"/api/optimal?surface=analytic&metric=reach&rho=-Inf", http.StatusBadRequest},
		{"/api/surface?surface=analytic&rho=nan", http.StatusBadRequest},
		{"/api/surface?surface=analytic&rho=%2Binf", http.StatusBadRequest},
	} {
		var body struct {
			Error string `json:"error"`
		}
		if code := get(t, srv, tc.url, &body); code != tc.want {
			t.Errorf("GET %s: status %d, want %d", tc.url, code, tc.want)
		} else if body.Error == "" {
			t.Errorf("GET %s: error body missing the reason", tc.url)
		}
	}
}

// TestServeUnknownRho404 needs a warm cache so the failure is the rho
// lookup, not a missing surface.
func TestServeUnknownRho404(t *testing.T) {
	if testing.Short() {
		t.Skip("simulated warm-up in -short mode")
	}
	dir := t.TempDir()
	pa, ps := testPresets()
	warmCache(t, dir, pa, ps)
	srv, _ := newServer(t, dir)
	for _, q := range []string{
		"/api/optimal?surface=analytic&metric=reach&rho=55",
		"/api/surface?surface=analytic&rho=55",
	} {
		if code := get(t, srv, q, nil); code != http.StatusNotFound {
			t.Errorf("GET %s: status %d, want 404 for a rho outside the preset grid", q, code)
		}
	}
}
