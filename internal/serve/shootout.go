package serve

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"net/http"

	"sensornet/internal/experiments"
)

// The shootout serving surface. Like the (ρ, p) surfaces, the
// cross-scheme shootout is published as an immutable precompacted
// snapshot: every 200 shape — the full cross, one channel model's
// rows, one density's rows, or a single (model, rho) cell — is
// pre-encoded to its exact wire bytes at build time, and its strong
// ETag is a pure function of the campaign's job fingerprints, so even
// a cold server answers If-None-Match with 304 before any cache read.

// shootState is the shootout's serving state: the preset, the
// normalised densities, and the validator tables.
type shootState struct {
	pre    experiments.Preset
	rhos   []float64
	models []string
	digest string
	store  store[shootSnapshot]
	// etags is keyed by the normalised (model, rho) filter — see
	// shootKey; "" model or rho means "all".
	etags map[string]string
}

// shootKey normalises a (model, rho) filter pair into the map key
// shared by ETags and pre-encoded bodies. hasRho distinguishes "no rho
// filter" from any real density.
func shootKey(model string, rho float64, hasRho bool) string {
	if !hasRho {
		return model + "|"
	}
	return model + "|" + rhoKey(rho)
}

func newShootState(pre experiments.Preset, rhos []float64) *shootState {
	if len(rhos) == 0 {
		rhos = experiments.DefaultShootoutRhos()
	}
	st := &shootState{pre: pre, rhos: rhos}
	for _, m := range experiments.ShootoutModels() {
		st.models = append(st.models, m.String())
	}
	// The digest hashes the ordered fingerprints of the campaign's
	// jobs, which encode every parameter that can change a cached cell.
	h := sha256.New()
	if jobs, err := experiments.ShootoutJobs(pre, rhos); err == nil {
		for _, j := range jobs {
			h.Write([]byte(j.Fingerprint()))
			h.Write([]byte{0x1f})
		}
	}
	st.digest = hex.EncodeToString(h.Sum(nil))
	st.etags = make(map[string]string)
	for _, key := range st.filterKeys() {
		st.etags[key] = etagOf("shootout", st.digest, key)
	}
	return st
}

// filterKeys enumerates every servable filter combination: all, per
// model, per rho, and per (model, rho) cell.
func (st *shootState) filterKeys() []string {
	keys := []string{shootKey("", 0, false)}
	for _, m := range st.models {
		keys = append(keys, shootKey(m, 0, false))
	}
	for _, rho := range st.rhos {
		keys = append(keys, shootKey("", rho, true))
		for _, m := range st.models {
			keys = append(keys, shootKey(m, rho, true))
		}
	}
	return keys
}

// shootSnapshot is the immutable warm state: the structured campaign
// plus every filter's pre-encoded body.
type shootSnapshot struct {
	data *experiments.ShootoutData
	body map[string][]byte
}

// shootoutBody is the JSON shape of every /api/shootout response: the
// (possibly narrowed) model and density axes plus the matching rows.
type shootoutBody struct {
	Models []string                  `json:"models"`
	Rhos   []float64                 `json:"rhos"`
	Rows   []experiments.ShootoutRow `json:"rows"`
}

// buildShootSnapshot pre-encodes every filter combination's body.
func buildShootSnapshot(st *shootState, data *experiments.ShootoutData) (*shootSnapshot, error) {
	snap := &shootSnapshot{data: data, body: make(map[string][]byte)}
	encode := func(model string, rho float64, hasRho bool) error {
		body := shootoutBody{}
		for _, m := range st.models {
			if model == "" || m == model {
				body.Models = append(body.Models, m)
			}
		}
		for _, r := range st.rhos {
			//lint:ignore floateq rho is a swept grid value compared for identity, not a computed quantity
			if !hasRho || r == rho {
				body.Rhos = append(body.Rhos, r)
			}
		}
		for _, row := range data.Rows {
			if model != "" && row.Model != model {
				continue
			}
			//lint:ignore floateq same grid-identity comparison as above
			if hasRho && row.Rho != rho {
				continue
			}
			body.Rows = append(body.Rows, row)
		}
		b, err := encodeJSON(body)
		if err != nil {
			return err
		}
		snap.body[shootKey(model, rho, hasRho)] = b
		return nil
	}
	if err := encode("", 0, false); err != nil {
		return nil, err
	}
	for _, m := range st.models {
		if err := encode(m, 0, false); err != nil {
			return nil, err
		}
	}
	for _, rho := range st.rhos {
		if err := encode("", rho, true); err != nil {
			return nil, err
		}
		for _, m := range st.models {
			if err := encode(m, rho, true); err != nil {
				return nil, err
			}
		}
	}
	return snap, nil
}

// loadShootout runs the campaign load through the (cache-only) engine
// and compacts it.
func (s *Server) loadShootout(ctx context.Context) (*shootSnapshot, error) {
	data, err := experiments.ShootoutDataCtx(ctx, s.eng, s.shoot.pre, s.shoot.rhos)
	if err != nil {
		return nil, err
	}
	return buildShootSnapshot(s.shoot, data)
}

// shootSnapshot returns the published shootout snapshot, building it
// (coalesced) when necessary, like Server.snapshot for surfaces.
func (s *Server) shootSnapshot(r *http.Request) (*shootSnapshot, error) {
	if snap := s.shoot.store.get(); snap != nil {
		return snap, nil
	}
	return s.shoot.store.build(r.Context(), func() (*shootSnapshot, error) {
		return s.loadShootout(s.baseCtx)
	}, false)
}

// handleShootout answers GET /api/shootout[?model=<name>][&rho=<density>]
// from the precompacted campaign snapshot.
func (s *Server) handleShootout(w http.ResponseWriter, r *http.Request) {
	model := r.URL.Query().Get("model")
	if model != "" {
		known := false
		for _, m := range s.shoot.models {
			if m == model {
				known = true
				break
			}
		}
		if !known {
			fail(w, fmt.Errorf("serve: model=%q: want one of %v", model, s.shoot.models), http.StatusBadRequest)
			return
		}
	}
	rho, hasRho := 0.0, false
	if r.URL.Query().Get("rho") != "" {
		parsed, err := parseRho(r)
		if err != nil {
			fail(w, err, http.StatusBadRequest)
			return
		}
		idx, ok := rhoIndexIn(s.shoot.rhos, parsed)
		if !ok {
			fail(w, fmt.Errorf("serve: rho=%g not in the shootout densities %v", parsed, s.shoot.rhos), http.StatusNotFound)
			return
		}
		// Echo the canonical density, keeping the body a pure function
		// of the ETag.
		rho, hasRho = s.shoot.rhos[idx], true
	}
	etag := s.shoot.etags[shootKey(model, rho, hasRho)]
	if notModified(w, r, etag) {
		return
	}
	snap, err := s.shootSnapshot(r)
	if err != nil {
		fail(w, err, http.StatusBadRequest)
		return
	}
	w.Header().Set("ETag", etag)
	writeRaw(w, http.StatusOK, snap.body[shootKey(model, rho, hasRho)])
}
