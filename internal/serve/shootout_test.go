// Shootout serving tests: the campaign's scheme-model cross is served
// from the cache with the same contract as the surfaces — 503 until
// published, zero recomputation once warm, strong ETags on every
// shape.
package serve_test

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"testing"

	"sensornet/internal/engine"
	"sensornet/internal/experiments"
	"sensornet/internal/serve"
)

func shootoutRhos() []float64 { return []float64{30} }

// warmShootout computes the shootout campaign's jobs into dir, exactly
// as shard or worker processes would.
func warmShootout(t *testing.T, dir string, ps experiments.Preset) {
	t.Helper()
	eng := engine.New(engine.Config{Workers: 4,
		Cache: engine.NewCache(dir, experiments.CacheSalt)})
	jobs, err := experiments.ShootoutJobs(ps, shootoutRhos())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(context.Background(), jobs); err != nil {
		t.Fatal(err)
	}
}

// newShootServer builds a cache-only server whose shootout densities
// match warmShootout.
func newShootServer(t *testing.T, dir string) (*serve.Server, *engine.Cache) {
	t.Helper()
	pa, ps := testPresets()
	cache := engine.NewCache(dir, experiments.CacheSalt)
	eng := engine.New(engine.Config{Workers: 4, Cache: cache, CacheOnly: true})
	srv, err := serve.New(eng, pa, ps, serve.WithShootoutRhos(shootoutRhos()))
	if err != nil {
		t.Fatal(err)
	}
	return srv, cache
}

func TestServeShootoutFromCacheOnly(t *testing.T) {
	if testing.Short() {
		t.Skip("simulated warm-up in -short mode")
	}
	dir := t.TempDir()
	_, ps := testPresets()
	warmShootout(t, dir, ps)
	srv, cache := newShootServer(t, dir)

	var body struct {
		Models []string  `json:"models"`
		Rhos   []float64 `json:"rhos"`
		Rows   []struct {
			Model   string  `json:"model"`
			Rho     float64 `json:"rho"`
			Schemes []struct {
				Scheme   string  `json:"scheme"`
				Display  string  `json:"display"`
				Coverage float64 `json:"coverage"`
			} `json:"schemes"`
			Best map[string]string `json:"best"`
		} `json:"rows"`
	}
	if code := get(t, srv, "/api/shootout", &body); code != http.StatusOK {
		t.Fatalf("full shootout: status %d", code)
	}
	if len(body.Models) != 3 || len(body.Rows) != 3 {
		t.Fatalf("models %v with %d rows, want 3 models x 1 rho", body.Models, len(body.Rows))
	}
	for _, row := range body.Rows {
		if len(row.Schemes) != 4 || row.Schemes[0].Scheme != "flooding" {
			t.Fatalf("row (%s, %g): schemes %+v", row.Model, row.Rho, row.Schemes)
		}
		if len(row.Best) != 4 {
			t.Fatalf("row (%s, %g): best map %v, want the 4 objectives", row.Model, row.Rho, row.Best)
		}
	}

	// Model and rho filters narrow the axes and the rows.
	if code := get(t, srv, "/api/shootout?model=SINR", &body); code != http.StatusOK {
		t.Fatalf("model filter: status %d", code)
	}
	if len(body.Models) != 1 || body.Models[0] != "SINR" || len(body.Rows) != 1 || body.Rows[0].Model != "SINR" {
		t.Fatalf("model filter: models %v, %d rows", body.Models, len(body.Rows))
	}
	if code := get(t, srv, "/api/shootout?model=CAM&rho=30", &body); code != http.StatusOK {
		t.Fatalf("cell filter: status %d", code)
	}
	if len(body.Rows) != 1 || body.Rows[0].Model != "CAM" || body.Rows[0].Rho != 30 {
		t.Fatalf("cell filter rows %+v", body.Rows)
	}

	if cs := cache.Stats(); cs.Misses != 0 || cs.Stores != 0 {
		t.Fatalf("serving recomputed jobs: cache stats %+v", cs)
	}
}

func TestServeShootoutETag(t *testing.T) {
	if testing.Short() {
		t.Skip("simulated warm-up in -short mode")
	}
	dir := t.TempDir()
	_, ps := testPresets()
	warmShootout(t, dir, ps)
	srv, cache := newShootServer(t, dir)

	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("GET", "/api/shootout?model=SINR&rho=30", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("first GET: status %d", rec.Code)
	}
	etag := rec.Header().Get("ETag")
	if etag == "" {
		t.Fatal("200 response carries no ETag")
	}
	body := rec.Body.Bytes()

	// A validator match answers 304 without touching the snapshot.
	before := cache.Stats()
	req := httptest.NewRequest("GET", "/api/shootout?model=SINR&rho=30", nil)
	req.Header.Set("If-None-Match", etag)
	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusNotModified {
		t.Fatalf("If-None-Match revalidation: status %d, want 304", rec.Code)
	}
	if after := cache.Stats(); after != before {
		t.Fatalf("revalidation touched the cache: %+v -> %+v", before, after)
	}

	// Equivalent density spellings validate against the same entity.
	req = httptest.NewRequest("GET", "/api/shootout?model=SINR&rho=30.0", nil)
	req.Header.Set("If-None-Match", etag)
	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusNotModified {
		t.Fatalf("rho=30.0 revalidation: status %d, want 304", rec.Code)
	}

	// And a plain re-GET reproduces the exact bytes.
	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("GET", "/api/shootout?model=SINR&rho=30", nil))
	if !bytes.Equal(rec.Body.Bytes(), body) {
		t.Fatal("re-GET bytes differ from the first response")
	}
}

func TestServeShootoutColdAndBadParams(t *testing.T) {
	srv, cache := newShootServer(t, t.TempDir())

	var body struct {
		Error       string   `json:"error"`
		MissingJobs []string `json:"missingJobs"`
	}
	if code := get(t, srv, "/api/shootout", &body); code != http.StatusServiceUnavailable {
		t.Fatalf("shootout on empty cache: status %d, want 503", code)
	}
	if body.Error == "" || len(body.MissingJobs) == 0 {
		t.Fatalf("503 body %+v does not name the unpublished jobs", body)
	}
	if cs := cache.Stats(); cs.Stores != 0 {
		t.Fatalf("empty-cache query computed and stored jobs: stats %+v", cs)
	}

	for _, tc := range []struct {
		url  string
		want int
	}{
		{"/api/shootout?model=nope", http.StatusBadRequest},
		{"/api/shootout?rho=abc", http.StatusBadRequest},
		{"/api/shootout?rho=NaN", http.StatusBadRequest},
		{"/api/shootout?rho=%2Binf", http.StatusBadRequest},
		{"/api/shootout?rho=55", http.StatusNotFound},
	} {
		var errBody struct {
			Error string `json:"error"`
		}
		if code := get(t, srv, tc.url, &errBody); code != tc.want {
			t.Errorf("GET %s: status %d, want %d", tc.url, code, tc.want)
		} else if errBody.Error == "" {
			t.Errorf("GET %s: error body missing the reason", tc.url)
		}
	}
}

// TestServeShootoutRefresh: surface=shootout narrows the refresh, and
// a rebuild over a warm cache keeps the bytes stable.
func TestServeShootoutRefresh(t *testing.T) {
	if testing.Short() {
		t.Skip("simulated warm-up in -short mode")
	}
	dir := t.TempDir()
	_, ps := testPresets()
	warmShootout(t, dir, ps)
	srv, _ := newShootServer(t, dir)

	_, before := rawGet(srv, "GET", "/api/shootout")
	code, body := rawGet(srv, "POST", "/api/refresh?surface=shootout")
	if code != http.StatusOK {
		t.Fatalf("refresh shootout: status %d body %s", code, body)
	}
	var results []struct {
		Surface string `json:"surface"`
		OK      bool   `json:"ok"`
	}
	decodeJSON(t, body, &results)
	if len(results) != 1 || results[0].Surface != "shootout" || !results[0].OK {
		t.Fatalf("refresh results %+v", results)
	}
	if _, after := rawGet(srv, "GET", "/api/shootout"); !bytes.Equal(after, before) {
		t.Fatal("shootout bytes changed across a refresh over an immutable cache")
	}
}
