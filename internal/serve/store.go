package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"sync"
	"sync/atomic"

	"sensornet/internal/experiments"
	"sensornet/internal/optimize"
)

// The precompacted surface store. A warm server answers every
// /api/optimal and /api/surface hit from an immutable in-memory
// snapshot: the surface's rows loaded ONCE through the engine, packed
// into flat per-metric float slices, the per-metric argmax tables
// precomputed, and every 200-path response body pre-encoded to its
// exact wire bytes. The snapshot is published through an atomic
// pointer, so steady-state requests are a single atomic load plus a
// []byte write — lock-free, alloc-light, zero cache reads.
//
// Cold surfaces coalesce: concurrent requests that find no snapshot
// elect one leader to run the engine load while the rest wait on the
// same buildCall, so N racing cold requests cost one pass over the
// cache. A failed build (rows unpublished, the cache-only engine
// reports Missing) is never stored — each wave of requests retries,
// preserving the "shards publish later, requests start succeeding"
// behaviour — and on a forced refresh the last good snapshot stays
// published until a newer build succeeds.

// compactSurface is the flat layout: one slice per metric, row-major
// over (rho index, grid index), NaN preserved for infeasible cells.
// Compared with [][]optimize.Point it is one allocation per metric and
// keeps each metric's row contiguous for the argmax scan.
type compactSurface struct {
	s    int
	rhos []float64
	cols int
	p    []float64

	reachAtL, latency, broadcasts []float64
	reachAtBudget, successRate    []float64
	final                         []float64
}

func compactFrom(surf *experiments.Surface) *compactSurface {
	rows := len(surf.Points)
	cols := 0
	if rows > 0 {
		cols = len(surf.Points[0])
	}
	n := rows * cols
	c := &compactSurface{
		s:    surf.Pre.S,
		rhos: append([]float64(nil), surf.Pre.Rhos...),
		cols: cols,

		p:             make([]float64, n),
		reachAtL:      make([]float64, n),
		latency:       make([]float64, n),
		broadcasts:    make([]float64, n),
		reachAtBudget: make([]float64, n),
		successRate:   make([]float64, n),
		final:         make([]float64, n),
	}
	for i, row := range surf.Points {
		for j, pt := range row {
			k := i*cols + j
			c.p[k] = pt.P
			c.reachAtL[k] = pt.ReachAtL
			c.latency[k] = pt.Latency
			c.broadcasts[k] = pt.Broadcasts
			c.reachAtBudget[k] = pt.ReachAtBudget
			c.successRate[k] = pt.SuccessRate
			c.final[k] = pt.Final
		}
	}
	return c
}

// point reconstructs the optimize.Point at (rho index i, grid index j).
func (c *compactSurface) point(i, j int) optimize.Point {
	k := i*c.cols + j
	return optimize.Point{
		P:             c.p[k],
		ReachAtL:      c.reachAtL[k],
		Latency:       c.latency[k],
		Broadcasts:    c.broadcasts[k],
		ReachAtBudget: c.reachAtBudget[k],
		SuccessRate:   c.successRate[k],
		Final:         c.final[k],
	}
}

// row materialises one density's grid sweep.
func (c *compactSurface) row(i int) []optimize.Point {
	out := make([]optimize.Point, c.cols)
	for j := range out {
		out[j] = c.point(i, j)
	}
	return out
}

// optimumCell is one entry of a per-metric argmax table; ok is false
// when no grid point at that density is feasible under the metric's
// constraints.
type optimumCell struct {
	opt optimize.Optimum
	ok  bool
}

// snapshot is everything a warm request needs, immutable once built.
type snapshot struct {
	compact *compactSurface
	// optima[metric][rhoIdx] is the precomputed argmax table.
	optima map[string][]optimumCell
	// optimalBody[metric][rhoIdx] is the pre-encoded 200 body for
	// /api/optimal (nil where the cell is infeasible).
	optimalBody map[string][][]byte
	// fullBody / rowBody[rhoIdx] are the pre-encoded /api/surface
	// bodies.
	fullBody []byte
	rowBody  [][]byte
}

// encodeJSON renders v exactly as writeJSON puts it on the wire —
// two-space indent, trailing newline — so pre-encoded snapshot bodies
// are byte-identical to per-request encoding.
func encodeJSON(v any) ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// buildSnapshot compacts a loaded surface and pre-encodes every
// 200-path body it can serve. name is the canonical surface query
// value ("analytic" or "sim") echoed in the bodies.
func buildSnapshot(name string, surf *experiments.Surface) (*snapshot, error) {
	c := compactFrom(surf)
	snap := &snapshot{
		compact:     c,
		optima:      make(map[string][]optimumCell),
		optimalBody: make(map[string][][]byte),
		rowBody:     make([][]byte, len(c.rhos)),
	}
	rows := make([][]optimize.Point, len(c.rhos))
	for i := range c.rhos {
		rows[i] = c.row(i)
	}
	for _, sel := range optimize.Selectors() {
		cells := make([]optimumCell, len(c.rhos))
		bodies := make([][]byte, len(c.rhos))
		for i, rho := range c.rhos {
			opt, ok := sel.Pick(rows[i])
			cells[i] = optimumCell{opt: opt, ok: ok}
			if !ok {
				continue
			}
			b, err := encodeJSON(optimalBody{
				Surface: name, Metric: sel.Name, Rho: rho,
				S: c.s, P: opt.P, Value: opt.Value,
			})
			if err != nil {
				return nil, err
			}
			bodies[i] = b
		}
		snap.optima[sel.Name] = cells
		snap.optimalBody[sel.Name] = bodies
	}
	full := surfaceBody{Surface: name, S: c.s, Rhos: c.rhos}
	for i, rho := range c.rhos {
		pts := pointsBody(rows[i])
		full.Rows = append(full.Rows, pts)
		b, err := encodeJSON(surfaceBody{
			Surface: name, S: c.s,
			Rhos: []float64{rho}, Rows: [][]pointBody{pts},
		})
		if err != nil {
			return nil, err
		}
		snap.rowBody[i] = b
	}
	fb, err := encodeJSON(full)
	if err != nil {
		return nil, err
	}
	snap.fullBody = fb
	return snap, nil
}

// buildCall is one in-progress snapshot build; waiters share its
// outcome instead of racing their own engine loads.
type buildCall[T any] struct {
	done chan struct{}
	snap *T
	err  error
}

// store publishes one surface's snapshot. It is generic over the
// snapshot type: the (ρ, p) surfaces publish *snapshot, the shootout
// publishes *shootSnapshot, and both get the same coalescing and
// last-good-stays semantics.
type store[T any] struct {
	snap     atomic.Pointer[T]
	mu       sync.Mutex
	inflight *buildCall[T]
}

// get is the steady-state fast path: one atomic load, no locks.
func (st *store[T]) get() *T { return st.snap.Load() }

// join decides this caller's role: an already-published snapshot (with
// force unset) short-circuits, an in-flight call is joined as a
// follower, and otherwise the caller registers a fresh call as leader.
func (st *store[T]) join(force bool) (snap *T, c *buildCall[T], leader bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if !force {
		if s := st.snap.Load(); s != nil {
			return s, nil, false
		}
	}
	if st.inflight != nil {
		return nil, st.inflight, false
	}
	st.inflight = &buildCall[T]{done: make(chan struct{})}
	return nil, st.inflight, true
}

// publish installs the leader's outcome — the snapshot swap on
// success, nothing on failure (the last good snapshot stays) — and
// wakes every follower.
func (st *store[T]) publish(c *buildCall[T]) {
	st.mu.Lock()
	st.inflight = nil
	if c.err == nil {
		st.snap.Store(c.snap)
	}
	st.mu.Unlock()
	close(c.done)
}

// build returns a snapshot, coalescing concurrent builders: the leader
// runs buildFn, everyone else waits on the shared call (or their own
// ctx). With force unset a snapshot published meanwhile is returned
// without building; with force set a build always runs (joining one
// already in flight), and on failure the previously published snapshot
// stays in place.
func (st *store[T]) build(ctx context.Context, buildFn func() (*T, error), force bool) (*T, error) {
	snap, c, leader := st.join(force)
	if snap != nil {
		return snap, nil
	}
	if !leader {
		select {
		case <-c.done:
			return c.snap, c.err
		case <-ctx.Done():
			return nil, context.Cause(ctx)
		}
	}
	c.snap, c.err = buildFn()
	st.publish(c)
	return c.snap, c.err
}
