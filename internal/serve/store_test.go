// Snapshot-store tests: steady-state serving is zero cache reads and
// byte-stable across /api/refresh; cold surfaces coalesce N racing
// requests into one engine load; an admission Budget turns misses into
// bounded write-through fills.
package serve_test

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"sensornet/internal/engine"
	"sensornet/internal/experiments"
	"sensornet/internal/serve"
)

// rawGet returns one response's status and body bytes.
func rawGet(srv *serve.Server, method, url string) (int, []byte) {
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(method, url, nil))
	return rec.Code, rec.Body.Bytes()
}

func decodeJSON(t *testing.T, body []byte, out any) {
	t.Helper()
	if err := json.Unmarshal(body, out); err != nil {
		t.Fatalf("bad JSON %q: %v", body, err)
	}
}

// steadyURLs is the hammered query mix: optimal and surface answers
// for both endpoints' shapes.
var steadyURLs = []string{
	"/api/optimal?surface=analytic&metric=reach&rho=40",
	"/api/optimal?surface=analytic&metric=energy&rho=100",
	"/api/surface?surface=analytic",
	"/api/surface?surface=analytic&rho=40",
}

// TestServeSteadyStateZeroCacheReads pins the store's acceptance
// property: once the snapshot is built, serving performs ZERO cache
// reads — not just zero misses, zero reads of any kind.
func TestServeSteadyStateZeroCacheReads(t *testing.T) {
	dir := t.TempDir()
	pa, _ := testPresets()
	warmAnalyticOnly(t, dir, pa)
	srv, cache := newServer(t, dir)

	// First hit builds the snapshot: the one and only pass over the
	// cache.
	if code, _ := rawGet(srv, "GET", steadyURLs[0]); code != http.StatusOK {
		t.Fatalf("warm-up request: status %d", code)
	}
	before := cache.Stats()
	if before.Hits == 0 {
		t.Fatal("snapshot build read nothing from the warm cache")
	}
	for i := 0; i < 50; i++ {
		for _, url := range steadyURLs {
			if code, body := rawGet(srv, "GET", url); code != http.StatusOK || len(body) == 0 {
				t.Fatalf("GET %s: status %d, %d bytes", url, code, len(body))
			}
		}
	}
	if after := cache.Stats(); after != before {
		t.Fatalf("steady-state serving touched the cache: %+v -> %+v", before, after)
	}
}

// TestServeColdRequestsCoalesce: N requests racing a cold surface cost
// one engine load — the cache (our counting cache) sees exactly the
// reads of a single surface build, not N of them.
func TestServeColdRequestsCoalesce(t *testing.T) {
	dir := t.TempDir()
	pa, _ := testPresets()
	warmAnalyticOnly(t, dir, pa)
	srv, cache := newServer(t, dir)

	const racers = 16
	var wg sync.WaitGroup
	codes := make([]int, racers)
	bodies := make([][]byte, racers)
	for i := 0; i < racers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			codes[i], bodies[i] = rawGet(srv, "GET", "/api/surface?surface=analytic")
		}(i)
	}
	wg.Wait()

	jobs := len(experiments.SurfaceJobs(pa, false, 1))
	if hits := cache.Stats().Hits; hits != jobs {
		t.Fatalf("%d racing cold requests cost %d cache reads, want the %d of one coalesced build", racers, hits, jobs)
	}
	for i := range codes {
		if codes[i] != http.StatusOK {
			t.Fatalf("racer %d: status %d", i, codes[i])
		}
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Fatalf("racer %d body differs from racer 0", i)
		}
	}
}

// TestServeByteStableAcrossRefresh hammers reads across /api/refresh
// boundaries under -race: every response stays byte-identical to the
// pre-refresh baseline (the cache is immutable, so a rebuild must
// reproduce the exact bytes), and nothing tears mid-swap.
func TestServeByteStableAcrossRefresh(t *testing.T) {
	dir := t.TempDir()
	pa, _ := testPresets()
	warmAnalyticOnly(t, dir, pa)
	srv, _ := newServer(t, dir)

	baseline := make(map[string][]byte, len(steadyURLs))
	for _, url := range steadyURLs {
		code, body := rawGet(srv, "GET", url)
		if code != http.StatusOK {
			t.Fatalf("baseline GET %s: status %d", url, code)
		}
		baseline[url] = body
	}

	var wg sync.WaitGroup
	errc := make(chan error, 64)
	stop := make(chan struct{})
	for _, url := range steadyURLs {
		wg.Add(1)
		go func(url string) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				code, body := rawGet(srv, "GET", url)
				if code != http.StatusOK || !bytes.Equal(body, baseline[url]) {
					select {
					case errc <- &mismatch{url, code, len(body)}:
					default:
					}
					return
				}
			}
		}(url)
	}
	for i := 0; i < 5; i++ {
		if code, body := rawGet(srv, "POST", "/api/refresh?surface=analytic"); code != http.StatusOK {
			t.Errorf("refresh %d: status %d body %s", i, code, body)
		}
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}
}

type mismatch struct {
	url  string
	code int
	size int
}

func (m *mismatch) Error() string {
	return "response diverged across refresh: " + m.url
}

// TestServeRefreshReportsPerSurface: refresh rebuilds what it can,
// reports what it cannot, and a failed rebuild leaves the surface's
// published snapshot serving.
func TestServeRefreshReportsPerSurface(t *testing.T) {
	dir := t.TempDir()
	pa, _ := testPresets()
	warmAnalyticOnly(t, dir, pa) // sim rows stay unpublished
	srv, _ := newServer(t, dir)

	_, before := rawGet(srv, "GET", "/api/surface?surface=analytic")

	code, body := rawGet(srv, "POST", "/api/refresh")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("refresh with sim unpublished: status %d, want 503; body %s", code, body)
	}
	var results []struct {
		Surface     string   `json:"surface"`
		OK          bool     `json:"ok"`
		Error       string   `json:"error"`
		MissingJobs []string `json:"missingJobs"`
	}
	decodeJSON(t, body, &results)
	if len(results) != 3 || results[0].Surface != "analytic" ||
		results[1].Surface != "sim" || results[2].Surface != "shootout" {
		t.Fatalf("refresh results %+v", results)
	}
	if !results[0].OK || results[0].Error != "" {
		t.Fatalf("analytic rebuild should succeed: %+v", results[0])
	}
	for _, res := range results[1:] {
		if res.OK || res.Error == "" || len(res.MissingJobs) == 0 {
			t.Fatalf("%s rebuild should fail naming missing jobs: %+v", res.Surface, res)
		}
	}

	// The analytic snapshot survived the partial failure, byte for byte.
	if code, after := rawGet(srv, "GET", "/api/surface?surface=analytic"); code != http.StatusOK || !bytes.Equal(after, before) {
		t.Fatalf("analytic serving degraded after partial refresh: status %d", code)
	}

	if code, _ := rawGet(srv, "POST", "/api/refresh?surface=nope"); code != http.StatusBadRequest {
		t.Fatalf("refresh with bad surface: status %d, want 400", code)
	}
}

// TestServeWriteThroughBudget: a cache-only engine with an admission
// Budget fills a cold surface by computing it once, write-through; the
// strict default (nil budget) keeps 503ing — and the fill is bounded
// by the budget, not by demand.
func TestServeWriteThroughBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("computes surface rows in write-through mode")
	}
	pa, ps := testPresets()
	jobs := len(experiments.SurfaceJobs(pa, false, 1))

	cache := engine.NewCache(t.TempDir(), experiments.CacheSalt)
	eng := engine.New(engine.Config{Workers: 4, Cache: cache, CacheOnly: true,
		Budget: engine.NewBudget(1e6, jobs, 0)})
	srv, err := serve.New(eng, pa, ps)
	if err != nil {
		t.Fatal(err)
	}

	code, body := rawGet(srv, "GET", "/api/surface?surface=analytic")
	if code != http.StatusOK {
		t.Fatalf("write-through fill: status %d body %s", code, body)
	}
	cs := cache.Stats()
	if cs.Stores != jobs {
		t.Fatalf("write-through stored %d rows, want the %d analytic jobs", cs.Stores, jobs)
	}

	// A strict engine over the same cache pins the degradation path:
	// unfilled sim rows still 503, while the rows the budgeted engine
	// wrote through now serve without recomputation.
	drained := engine.New(engine.Config{Workers: 4, Cache: cache, CacheOnly: true})
	srv2, err := serve.New(drained, pa, ps)
	if err != nil {
		t.Fatal(err)
	}
	if code, _ := rawGet(srv2, "GET", "/api/surface?surface=sim"); code != http.StatusServiceUnavailable {
		t.Fatalf("strict engine over unfilled sim rows: status %d, want 503", code)
	}
	// And the rows the budgeted engine filled serve strictly now.
	if code, _ := rawGet(srv2, "GET", "/api/surface?surface=analytic"); code != http.StatusOK {
		t.Fatalf("strict serving of write-through-filled rows: status %d", code)
	}
}

// TestServeHealthSnapshots: /healthz reports which snapshots are
// built and the budget stats when one is configured.
func TestServeHealthSnapshots(t *testing.T) {
	dir := t.TempDir()
	pa, _ := testPresets()
	warmAnalyticOnly(t, dir, pa)
	srv, _ := newServer(t, dir)

	var health struct {
		Snapshots map[string]bool     `json:"snapshots"`
		Budget    *engine.BudgetStats `json:"budget"`
	}
	_, body := rawGet(srv, "GET", "/healthz")
	decodeJSON(t, body, &health)
	if health.Snapshots["analytic"] || health.Snapshots["sim"] {
		t.Fatalf("cold server reports built snapshots: %+v", health.Snapshots)
	}
	if health.Budget != nil {
		t.Fatalf("strict server reports a budget: %+v", health.Budget)
	}

	rawGet(srv, "GET", "/api/surface?surface=analytic")
	_, body = rawGet(srv, "GET", "/healthz")
	decodeJSON(t, body, &health)
	if !health.Snapshots["analytic"] || health.Snapshots["sim"] {
		t.Fatalf("after an analytic request: snapshots %+v", health.Snapshots)
	}
}

// TestServeWarm prebuilds snapshots so the first request is already
// steady-state.
func TestServeWarm(t *testing.T) {
	dir := t.TempDir()
	pa, _ := testPresets()
	warmAnalyticOnly(t, dir, pa)
	srv, cache := newServer(t, dir)

	// Warm returns the sim surface's missing-rows error but still
	// publishes the analytic snapshot.
	if err := srv.Warm(context.Background()); err == nil {
		t.Fatal("Warm over a half-populated cache should report the cold surface")
	}
	before := cache.Stats()
	if code, _ := rawGet(srv, "GET", "/api/surface?surface=analytic"); code != http.StatusOK {
		t.Fatal("warmed surface not served")
	}
	if after := cache.Stats(); after != before {
		t.Fatalf("request after Warm read the cache: %+v -> %+v", before, after)
	}
}
