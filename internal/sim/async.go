package sim

import (
	"errors"
	"math"
	"math/rand"
	"sort"

	"sensornet/internal/channel"
	"sensornet/internal/deploy"
	"sensornet/internal/desim"
	"sensornet/internal/faults"
	"sensornet/internal/metrics"
	"sensornet/internal/protocol"
	"sensornet/internal/trace"
)

// errSensingLists reports a carrier-sense run over a deployment built
// without sensing neighbour lists.
var errSensingLists = errors.New("sim: carrier-sense model needs deploy.Config.WithSensing")

// errSINRGains reports an SINR run over a deployment built without
// precomputed path-gain tables.
var errSINRGains = errors.New("sim: SINR model needs deploy.Config.WithSensing and GainAlpha (precomputed gain tables)")

// sinrCand tracks one in-flight reception at a receiver under the SINR
// model: the transmitter, its precomputed path gain at this receiver,
// and the peak interference power observed so far over the transmission
// window. Decode succeeds iff gain >= β·(N₀ + peakI) at transmission
// end — the continuous-time worst case over the window, matching the
// slot engine's whole-slot overlap semantics.
type sinrCand struct {
	from  int32
	gain  float64
	peakI float64
}

// Phase attribution convention.
//
// The async engine stamps every event with a 1-based phase index on the
// global phase grid (time 0 opens phase 1, matching the slot-aligned
// engine where the source transmits in phase 1). Transmissions are
// unit-length intervals, so an event instant can land exactly on a
// phase boundary, and the two interval endpoints resolve the tie in
// opposite directions:
//
//   - an interval START (a transmission) belongs to the phase it opens:
//     a start on the boundary is the first instant of the new phase;
//   - an interval END (a reception, which happens when the carrying
//     transmission completes) belongs to the phase it closes: the
//     packet was in the air during the finishing phase, so an end on
//     the boundary still counts into it.
//
// Every consumer — fault filtering, protocol contexts, first-reception
// ring stats, trace events, PhaseNew buckets, and the cumulative
// timeline — goes through txStartPhase/rxEndPhase, so a single event
// can never be attributed to two different phases.

// txStartPhase maps a transmission start instant onto the 1-based
// global phase grid: floor(t/L) + 1, boundary instants open the next
// phase.
func txStartPhase(t, phaseLen float64) int32 { return int32(t/phaseLen) + 1 }

// rxEndPhase maps a completion instant onto the 1-based global phase
// grid: ceil(t/L), boundary instants close the finishing phase.
func rxEndPhase(t, phaseLen float64) int32 { return int32(math.Ceil(t / phaseLen)) }

// localSlot maps an event instant onto the slot grid of the node that
// owns the event. Each node's phases start at its private offset, so
// the global time modulo the phase length says nothing about which of
// the node's S slots the event falls in. Interval starts take the slot
// they open; interval ends (completion=true) take the slot they close,
// with an exact slot boundary attributed to the just-finished slot
// (wrapping to the last slot of the previous phase when the end sits on
// the node's own phase boundary).
func localSlot(t, offset, phaseLen float64, completion bool) int32 {
	local := math.Mod(t-offset, phaseLen)
	if local < 0 {
		local += phaseLen
	}
	if completion {
		s := int32(math.Ceil(local)) - 1
		if s < 0 {
			s += int32(phaseLen)
		}
		return s
	}
	s := int32(local)
	if s >= int32(phaseLen) { // guard against float rounding at the modulus edge
		s = 0
	}
	return s
}

// runAsync executes the asynchronous engine: every node's phase grid is
// shifted by a private random offset, so transmissions are unit-length
// intervals at arbitrary real times (measured in slots). A reception
// succeeds iff no other audible transmission overlaps it (Assumption 6
// verbatim, without the slot-alignment simplification the analysis
// uses), with the optional carrier-sensing extension.
func runAsync(cfg Config, dep *deploy.Deployment, rng *rand.Rand, plan *faults.Plan) (*Result, error) {
	phaseLen := float64(cfg.S)
	offset := make([]float64, dep.N())
	for i := range offset {
		offset[i] = rng.Float64() * phaseLen
	}
	return runAsyncOffsets(cfg, dep, rng, plan, offset)
}

// runAsyncOffsets is runAsync with the per-node phase offsets supplied
// by the caller: the test seam that pins phase-boundary behaviour with
// exact (zero- or integer-valued) offsets, which random sampling can
// never produce.
func runAsyncOffsets(cfg Config, dep *deploy.Deployment, rng *rand.Rand, plan *faults.Plan, offset []float64) (*Result, error) {
	if cfg.Model == channel.CAMCarrierSense && dep.Sensing == nil {
		return nil, errSensingLists
	}
	if cfg.Model == channel.ModelSINR {
		if err := cfg.SINR.Validate(); err != nil {
			return nil, err
		}
		if dep.Gains == nil || dep.SensingGains == nil {
			return nil, errSINRGains
		}
		//lint:ignore floateq both sides are the same configured constant, not computed values; any drift is a wiring bug
		if dep.GainAlpha != cfg.SINR.Alpha {
			return nil, errors.New("sim: deployment gain tables were built for a different path-loss exponent")
		}
	}
	n := dep.N()
	state := cfg.Protocol.NewState(n)
	phaseLen := float64(cfg.S)
	energyCost := channel.DefaultCosts(cfg.Model).Energy

	var eng desim.Engine

	hasPacket := make([]bool, n)
	pendingTx := make([]bool, n) // scheduled but not yet started
	cancelled := make([]bool, n)
	firstPhase := make([]int32, n)
	for i := range firstPhase {
		firstPhase[i] = -1
	}
	firstPhase[0] = 0

	// Per-receiver reception bookkeeping.
	rxCount := make([]int32, n)   // concurrent in-range transmissions
	senseCnt := make([]int32, n)  // concurrent sensing-annulus transmissions
	corrupted := make([]bool, n)  // current reception window overlapped
	currentTx := make([]int32, n) // transmitter of the sole reception
	transmitting := make([]bool, n)

	// SINR bookkeeping (allocated only under ModelSINR): per-receiver
	// total on-air power and the in-flight reception candidates.
	var curPower []float64
	var cands [][]sinrCand
	if cfg.Model == channel.ModelSINR {
		curPower = make([]float64, n)
		cands = make([][]sinrCand, n)
	}
	// bumpPeaks refreshes every in-flight candidate's peak interference
	// at receiver v after curPower[v] grew (a new transmission came on
	// air). Ends never raise interference, so only starts call this.
	bumpPeaks := func(v int32) {
		cl := cands[v]
		p := curPower[v]
		for i := range cl {
			if inf := p - cl[i].gain; inf > cl[i].peakI {
				cl[i].peakI = inf
			}
		}
	}

	reached := 1
	broadcasts := 0
	hasPacket[0] = true
	var nDelivered, nLostColl, nLostFault int
	var succSum float64
	var succN int
	// Event-time logs for the timeline; sized for the common case where
	// most nodes receive once and transmit at most once, so steady-state
	// appends do not regrow.
	rxTimes := make([]float64, 0, n) // first-reception times
	txTimes := make([]float64, 0, n) // transmission start times

	horizon := phaseLen * float64(cfg.MaxPhases)

	// record stamps trace events with the global phase under the shared
	// attribution convention and the slot on the owning node's private
	// grid (completion picks the end-instant rules for both).
	record := func(k trace.Kind, t float64, node, other int32, completion bool) {
		if cfg.Tracer != nil {
			ph := txStartPhase(t, phaseLen)
			if completion {
				ph = rxEndPhase(t, phaseLen)
			}
			cfg.Tracer.Record(trace.Event{
				Kind:  k,
				Phase: ph,
				Slot:  localSlot(t, offset[node], phaseLen, completion),
				Node:  node,
				Other: other,
			})
		}
	}

	// scheduleTx plans node u's single broadcast in a random slot of
	// its first own phase starting at or after time t.
	var scheduleTx func(u int32, t float64)

	deliverTo := func(v int32, from int32, endTime float64) bool {
		if transmitting[v] {
			return false
		}
		// The reception happens the instant the carrying transmission
		// completes, so every per-reception consumer below sees the same
		// end-instant phase.
		rxPhase := rxEndPhase(endTime, phaseLen)
		if plan != nil {
			// Fault filter after collision resolution: a down receiver
			// loses the packet; a decodable packet can still be lost to
			// the lossy link layer (one loss draw per such reception).
			if !plan.Up(v, rxPhase) || plan.Drop() {
				nLostFault++
				record(trace.KindDrop, endTime, v, from, true)
				return false
			}
		}
		nDelivered++
		d := dep.Pos[v].Dist(dep.Pos[from])
		ctx := protocol.Ctx{Phase: rxPhase, Degree: dep.Degree(int(v))}
		record(trace.KindDeliver, endTime, v, from, true)
		if !hasPacket[v] {
			hasPacket[v] = true
			reached++
			rxTimes = append(rxTimes, endTime)
			firstPhase[v] = rxPhase
			record(trace.KindFirstReceive, endTime, v, from, true)
			if state.OnFirstReceive(v, from, d, ctx, rng) {
				scheduleTx(v, endTime)
			}
		} else if pendingTx[v] && !cancelled[v] {
			if !state.OnDuplicate(v, from, d, ctx) {
				cancelled[v] = true
				record(trace.KindCancel, endTime, v, from, true)
			}
		}
		return true
	}

	transmit := func(u int32) {
		start := eng.Now()
		end := start + 1
		transmitting[u] = true
		broadcasts++
		// The spend that crosses the energy cap still completes: the
		// depletion only blocks later activity.
		plan.Spend(u, energyCost)
		txTimes = append(txTimes, start)
		record(trace.KindTx, start, u, -1, false)
		if cfg.Model == channel.CFM {
			// Collision-free: every neighbour decodes at transmission
			// end, no corruption bookkeeping needed.
			eng.At(end, desim.PriorityEnd, func() {
				transmitting[u] = false
				delivered := 0
				for _, v := range dep.Neighbors[u] {
					if deliverTo(v, u, end) {
						delivered++
					}
				}
				if deg := dep.Degree(int(u)); deg > 0 {
					succSum += float64(delivered) / float64(deg)
				}
				succN++
			})
			return
		}
		if cfg.Model == channel.ModelSINR {
			// Physical interference: every audible transmission adds its
			// precomputed path gain to the receivers it can reach; each
			// in-range pair becomes a decode candidate judged at the
			// transmission's end against the peak interference it saw.
			// A start and an end sharing an instant resolve end-first
			// (desim.PriorityEnd < PriorityStart), so back-to-back
			// transmissions do not interfere — the same closed-open
			// interval convention the CAM bookkeeping follows.
			gains := dep.Gains[u]
			for i, v := range dep.Neighbors[u] {
				g := gains[i]
				curPower[v] += g
				bumpPeaks(v)
				cands[v] = append(cands[v], sinrCand{from: u, gain: g, peakI: curPower[v] - g})
			}
			sgains := dep.SensingGains[u]
			for i, v := range dep.Sensing[u] {
				curPower[v] += sgains[i]
				bumpPeaks(v)
			}
			eng.At(end, desim.PriorityEnd, func() {
				transmitting[u] = false
				delivered := 0
				for i, v := range dep.Neighbors[u] {
					cl := cands[v]
					for ci := range cl {
						if cl[ci].from != u {
							continue
						}
						ok := cl[ci].gain >= cfg.SINR.Beta*(cfg.SINR.N0+cl[ci].peakI)
						cl[ci] = cl[len(cl)-1]
						cands[v] = cl[:len(cl)-1]
						if ok {
							if deliverTo(v, u, end) {
								delivered++
							}
						} else {
							nLostColl++
							record(trace.KindCollision, end, v, -1, true)
						}
						break
					}
					curPower[v] -= gains[i]
				}
				for i, v := range dep.Sensing[u] {
					curPower[v] -= sgains[i]
				}
				if deg := dep.Degree(int(u)); deg > 0 {
					succSum += float64(delivered) / float64(deg)
				}
				succN++
			})
			return
		}
		// Reception bookkeeping at in-range receivers.
		for _, v := range dep.Neighbors[u] {
			if rxCount[v] == 0 {
				currentTx[v] = u
				corrupted[v] = senseCnt[v] > 0
			} else {
				corrupted[v] = true
			}
			rxCount[v]++
		}
		if cfg.Model == channel.CAMCarrierSense {
			for _, v := range dep.Sensing[u] {
				senseCnt[v]++
				if rxCount[v] > 0 {
					corrupted[v] = true
				}
			}
		}
		eng.At(end, desim.PriorityEnd, func() {
			transmitting[u] = false
			delivered := 0
			for _, v := range dep.Neighbors[u] {
				rxCount[v]--
				if rxCount[v] == 0 {
					if !corrupted[v] && currentTx[v] == u {
						if deliverTo(v, u, end) {
							delivered++
						}
					} else {
						nLostColl++
						record(trace.KindCollision, end, v, -1, true)
					}
					corrupted[v] = false
				}
			}
			if cfg.Model == channel.CAMCarrierSense {
				for _, v := range dep.Sensing[u] {
					senseCnt[v]--
				}
			}
			if deg := dep.Degree(int(u)); deg > 0 {
				succSum += float64(delivered) / float64(deg)
			}
			succN++
		})
	}

	scheduleTx = func(u int32, t float64) {
		// First phase boundary of node u at or after t.
		k := math.Ceil((t - offset[u]) / phaseLen)
		if k < 0 {
			k = 0
		}
		start := offset[u] + k*phaseLen
		if start < t {
			start += phaseLen
		}
		slot := float64(rng.Intn(cfg.S))
		at := start + slot
		if plan != nil {
			// A sleeping node defers to its next waking phase, keeping
			// its slot offset; a node that dies first never transmits.
			// Transmission starts are interval-start events, so they use
			// the start-instant phase convention.
			for !plan.Awake(u, txStartPhase(at, phaseLen)) {
				at += phaseLen
				if at >= horizon {
					return
				}
			}
			if !plan.Alive(u, txStartPhase(at, phaseLen)) {
				return
			}
		}
		if at >= horizon {
			return
		}
		pendingTx[u] = true
		eng.At(at, desim.PriorityStart, func() {
			pendingTx[u] = false
			if cancelled[u] {
				return
			}
			// Re-check at fire time: energy depletion may have struck
			// between scheduling and transmission.
			if plan != nil && !plan.Up(u, txStartPhase(eng.Now(), phaseLen)) {
				return
			}
			transmit(u)
		})
	}

	// Kick off: the source broadcasts in a random slot of its phase 1.
	scheduleTx(0, offset[0])
	eng.RunUntil(horizon)

	res := &Result{
		N:               n,
		Reached:         reached,
		Broadcasts:      broadcasts,
		Connected:       dep.ReachableFromSource(),
		Delivered:       nDelivered,
		LostToCollision: nLostColl,
		LostToFault:     nLostFault,
	}
	st := plan.Stats()
	res.Crashed, res.Depleted = st.Crashed, st.Depleted
	if succN > 0 {
		res.SuccessRate = succSum / float64(succN)
	}
	res.Timeline = buildTimeline(n, phaseLen, rxTimes, txTimes)
	res.PhaseNew = bucketByPhase(rxTimes, phaseLen)
	fillRingStats(res, dep, firstPhase)
	return res, nil
}

// buildTimeline converts event times (in slots) into the shared
// phase-boundary timeline shape. The cumulative counts follow the
// engine's phase-attribution convention: the sample taken at boundary
// ph covers every event attributed to phases 1..ph — receptions by
// their end instant (end <= t) and transmissions by the instant they
// COMPLETE (start+1 <= t). Counting transmissions by completion keeps a
// broadcast in the same sample as the receptions it causes even when
// the unit-length transmission spans a phase boundary, exactly as in
// the slot-aligned engine's sample(), where a broadcast and its
// receptions share the transmitter's slot. rxTimes and txTimes are
// sorted in place.
func buildTimeline(n int, phaseLen float64, rxTimes, txTimes []float64) (tl metrics.Timeline) {
	sort.Float64s(rxTimes)
	sort.Float64s(txTimes)
	maxT := 0.0
	if len(rxTimes) > 0 {
		maxT = rxTimes[len(rxTimes)-1]
	}
	if len(txTimes) > 0 && txTimes[len(txTimes)-1]+1 > maxT {
		maxT = txTimes[len(txTimes)-1] + 1
	}
	phases := int(math.Ceil(maxT / phaseLen))
	tl.N = float64(n)
	ri, ti := 0, 0
	for ph := 0; ph <= phases; ph++ {
		t := float64(ph) * phaseLen
		for ri < len(rxTimes) && rxTimes[ri] <= t {
			ri++
		}
		for ti < len(txTimes) && txTimes[ti]+1 <= t {
			ti++
		}
		tl.Phases = append(tl.Phases, float64(ph))
		tl.CumReach = append(tl.CumReach, float64(1+ri)/float64(n))
		tl.CumBroadcasts = append(tl.CumBroadcasts, float64(ti))
	}
	return tl
}

// bucketByPhase counts first receptions per phase. Buckets are sized
// and indexed by the same end-instant convention (rxEndPhase), so a
// reception completing exactly on a boundary bins into the phase it
// closes and the bucket count equals the attribution phase of the
// latest reception — no clamping, no phantom trailing bucket. rxTimes
// must be sorted ascending (buildTimeline has already done so).
func bucketByPhase(rxTimes []float64, phaseLen float64) []int {
	if len(rxTimes) == 0 {
		return nil
	}
	out := make([]int, rxEndPhase(rxTimes[len(rxTimes)-1], phaseLen))
	for _, t := range rxTimes {
		out[rxEndPhase(t, phaseLen)-1]++
	}
	return out
}
