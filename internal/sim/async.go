package sim

import (
	"errors"
	"math"
	"math/rand"
	"sort"

	"sensornet/internal/channel"
	"sensornet/internal/deploy"
	"sensornet/internal/desim"
	"sensornet/internal/faults"
	"sensornet/internal/metrics"
	"sensornet/internal/protocol"
	"sensornet/internal/trace"
)

// errSensingLists reports a carrier-sense run over a deployment built
// without sensing neighbour lists.
var errSensingLists = errors.New("sim: carrier-sense model needs deploy.Config.WithSensing")

// runAsync executes the asynchronous engine: every node's phase grid is
// shifted by a private random offset, so transmissions are unit-length
// intervals at arbitrary real times (measured in slots). A reception
// succeeds iff no other audible transmission overlaps it (Assumption 6
// verbatim, without the slot-alignment simplification the analysis
// uses), with the optional carrier-sensing extension.
func runAsync(cfg Config, dep *deploy.Deployment, rng *rand.Rand, plan *faults.Plan) (*Result, error) {
	if cfg.Model == channel.CAMCarrierSense && dep.Sensing == nil {
		return nil, errSensingLists
	}
	n := dep.N()
	state := cfg.Protocol.NewState(n)
	phaseLen := float64(cfg.S)
	energyCost := channel.DefaultCosts(cfg.Model).Energy
	// planPhase maps continuous time onto the fault plan's 1-based phase
	// grid: the source's first transmission window is phase 1, matching
	// the slot-aligned engine.
	planPhase := func(t float64) int32 { return int32(t/phaseLen) + 1 }

	offset := make([]float64, n)
	for i := range offset {
		offset[i] = rng.Float64() * phaseLen
	}

	var eng desim.Engine

	hasPacket := make([]bool, n)
	pendingTx := make([]bool, n) // scheduled but not yet started
	cancelled := make([]bool, n)
	firstPhase := make([]int32, n)
	for i := range firstPhase {
		firstPhase[i] = -1
	}
	firstPhase[0] = 0

	// Per-receiver reception bookkeeping.
	rxCount := make([]int32, n)   // concurrent in-range transmissions
	senseCnt := make([]int32, n)  // concurrent sensing-annulus transmissions
	corrupted := make([]bool, n)  // current reception window overlapped
	currentTx := make([]int32, n) // transmitter of the sole reception
	transmitting := make([]bool, n)

	reached := 1
	broadcasts := 0
	hasPacket[0] = true
	var nDelivered, nLostColl, nLostFault int
	var succSum float64
	var succN int
	// Event-time logs for the timeline; sized for the common case where
	// most nodes receive once and transmit at most once, so steady-state
	// appends do not regrow.
	rxTimes := make([]float64, 0, n) // first-reception times
	txTimes := make([]float64, 0, n) // transmission start times

	horizon := phaseLen * float64(cfg.MaxPhases)

	record := func(k trace.Kind, t float64, node, other int32) {
		if cfg.Tracer != nil {
			cfg.Tracer.Record(trace.Event{
				Kind:  k,
				Phase: int32(t / phaseLen),
				Slot:  int32(t) % int32(cfg.S),
				Node:  node,
				Other: other,
			})
		}
	}

	// scheduleTx plans node u's single broadcast in a random slot of
	// its first own phase starting at or after time t.
	var scheduleTx func(u int32, t float64)

	deliverTo := func(v int32, from int32, endTime float64) bool {
		if transmitting[v] {
			return false
		}
		if plan != nil {
			// Fault filter after collision resolution: a down receiver
			// loses the packet; a decodable packet can still be lost to
			// the lossy link layer (one loss draw per such reception).
			if !plan.Up(v, planPhase(endTime)) || plan.Drop() {
				nLostFault++
				record(trace.KindDrop, endTime, v, from)
				return false
			}
		}
		nDelivered++
		d := dep.Pos[v].Dist(dep.Pos[from])
		ctx := protocol.Ctx{Phase: int32(endTime / phaseLen), Degree: dep.Degree(int(v))}
		record(trace.KindDeliver, endTime, v, from)
		if !hasPacket[v] {
			hasPacket[v] = true
			reached++
			rxTimes = append(rxTimes, endTime)
			firstPhase[v] = int32(math.Ceil(endTime / phaseLen))
			record(trace.KindFirstReceive, endTime, v, from)
			if state.OnFirstReceive(v, from, d, ctx, rng) {
				scheduleTx(v, endTime)
			}
		} else if pendingTx[v] && !cancelled[v] {
			if !state.OnDuplicate(v, from, d, ctx) {
				cancelled[v] = true
				record(trace.KindCancel, endTime, v, from)
			}
		}
		return true
	}

	transmit := func(u int32) {
		start := eng.Now()
		end := start + 1
		transmitting[u] = true
		broadcasts++
		// The spend that crosses the energy cap still completes: the
		// depletion only blocks later activity.
		plan.Spend(u, energyCost)
		txTimes = append(txTimes, start)
		record(trace.KindTx, start, u, -1)
		if cfg.Model == channel.CFM {
			// Collision-free: every neighbour decodes at transmission
			// end, no corruption bookkeeping needed.
			eng.At(end, desim.PriorityEnd, func() {
				transmitting[u] = false
				delivered := 0
				for _, v := range dep.Neighbors[u] {
					if deliverTo(v, u, end) {
						delivered++
					}
				}
				if deg := dep.Degree(int(u)); deg > 0 {
					succSum += float64(delivered) / float64(deg)
				}
				succN++
			})
			return
		}
		// Reception bookkeeping at in-range receivers.
		for _, v := range dep.Neighbors[u] {
			if rxCount[v] == 0 {
				currentTx[v] = u
				corrupted[v] = senseCnt[v] > 0
			} else {
				corrupted[v] = true
			}
			rxCount[v]++
		}
		if cfg.Model == channel.CAMCarrierSense {
			for _, v := range dep.Sensing[u] {
				senseCnt[v]++
				if rxCount[v] > 0 {
					corrupted[v] = true
				}
			}
		}
		eng.At(end, desim.PriorityEnd, func() {
			transmitting[u] = false
			delivered := 0
			for _, v := range dep.Neighbors[u] {
				rxCount[v]--
				if rxCount[v] == 0 {
					if !corrupted[v] && currentTx[v] == u {
						if deliverTo(v, u, end) {
							delivered++
						}
					} else {
						nLostColl++
						record(trace.KindCollision, end, v, -1)
					}
					corrupted[v] = false
				}
			}
			if cfg.Model == channel.CAMCarrierSense {
				for _, v := range dep.Sensing[u] {
					senseCnt[v]--
				}
			}
			if deg := dep.Degree(int(u)); deg > 0 {
				succSum += float64(delivered) / float64(deg)
			}
			succN++
		})
	}

	scheduleTx = func(u int32, t float64) {
		// First phase boundary of node u at or after t.
		k := math.Ceil((t - offset[u]) / phaseLen)
		if k < 0 {
			k = 0
		}
		start := offset[u] + k*phaseLen
		if start < t {
			start += phaseLen
		}
		slot := float64(rng.Intn(cfg.S))
		at := start + slot
		if plan != nil {
			// A sleeping node defers to its next waking phase, keeping
			// its slot offset; a node that dies first never transmits.
			for !plan.Awake(u, planPhase(at)) {
				at += phaseLen
				if at >= horizon {
					return
				}
			}
			if !plan.Alive(u, planPhase(at)) {
				return
			}
		}
		if at >= horizon {
			return
		}
		pendingTx[u] = true
		eng.At(at, desim.PriorityStart, func() {
			pendingTx[u] = false
			if cancelled[u] {
				return
			}
			// Re-check at fire time: energy depletion may have struck
			// between scheduling and transmission.
			if plan != nil && !plan.Up(u, planPhase(eng.Now())) {
				return
			}
			transmit(u)
		})
	}

	// Kick off: the source broadcasts in a random slot of its phase 1.
	scheduleTx(0, offset[0])
	eng.RunUntil(horizon)

	res := &Result{
		N:               n,
		Reached:         reached,
		Broadcasts:      broadcasts,
		Connected:       dep.ReachableFromSource(),
		Delivered:       nDelivered,
		LostToCollision: nLostColl,
		LostToFault:     nLostFault,
	}
	st := plan.Stats()
	res.Crashed, res.Depleted = st.Crashed, st.Depleted
	if succN > 0 {
		res.SuccessRate = succSum / float64(succN)
	}
	res.Timeline = buildTimeline(n, phaseLen, rxTimes, txTimes)
	res.PhaseNew = bucketByPhase(rxTimes, phaseLen)
	fillRingStats(res, dep, firstPhase)
	return res, nil
}

// buildTimeline converts event times (in slots) into the shared
// phase-boundary timeline shape.
func buildTimeline(n int, phaseLen float64, rxTimes, txTimes []float64) (tl metrics.Timeline) {
	sort.Float64s(rxTimes)
	sort.Float64s(txTimes)
	maxT := 0.0
	if len(rxTimes) > 0 {
		maxT = rxTimes[len(rxTimes)-1]
	}
	if len(txTimes) > 0 && txTimes[len(txTimes)-1]+1 > maxT {
		maxT = txTimes[len(txTimes)-1] + 1
	}
	phases := int(math.Ceil(maxT / phaseLen))
	tl.N = float64(n)
	ri, ti := 0, 0
	for ph := 0; ph <= phases; ph++ {
		t := float64(ph) * phaseLen
		for ri < len(rxTimes) && rxTimes[ri] <= t {
			ri++
		}
		for ti < len(txTimes) && txTimes[ti] < t {
			ti++
		}
		tl.Phases = append(tl.Phases, float64(ph))
		tl.CumReach = append(tl.CumReach, float64(1+ri)/float64(n))
		tl.CumBroadcasts = append(tl.CumBroadcasts, float64(ti))
	}
	return tl
}

func bucketByPhase(rxTimes []float64, phaseLen float64) []int {
	if len(rxTimes) == 0 {
		return nil
	}
	maxT := rxTimes[len(rxTimes)-1]
	out := make([]int, int(math.Ceil(maxT/phaseLen))+1)
	for _, t := range rxTimes {
		idx := int(math.Ceil(t/phaseLen)) - 1
		if idx < 0 {
			idx = 0
		}
		if idx >= len(out) {
			idx = len(out) - 1
		}
		out[idx]++
	}
	return out
}
