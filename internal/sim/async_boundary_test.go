package sim

import (
	"math/rand"
	"reflect"
	"testing"

	"sensornet/internal/deploy"
	"sensornet/internal/faults"
	"sensornet/internal/geom"
	"sensornet/internal/trace"
)

// Phase-boundary regression tests for the async engine. Random offsets
// almost never produce events exactly on phase boundaries, so these
// tests drive runAsyncOffsets directly with hand-picked offsets (the
// test seam) and hand-built line deployments, where boundary-valued
// event times are constructed rather than hoped for.

// lineDeployment places n nodes on a line with spacing 0.9 (source at
// the origin), so node i neighbours exactly i-1 and i+1 and the hop
// structure is fully known.
func lineDeployment(n int) *deploy.Deployment {
	d := &deploy.Deployment{R: 1, FieldRadius: float64(n)}
	d.Pos = make([]geom.Point, n)
	d.Neighbors = make([][]int32, n)
	for i := 0; i < n; i++ {
		d.Pos[i] = geom.Point{X: 0.9 * float64(i)}
		if i > 0 {
			d.Neighbors[i] = append(d.Neighbors[i], int32(i-1))
		}
		if i < n-1 {
			d.Neighbors[i] = append(d.Neighbors[i], int32(i+1))
		}
	}
	return d
}

// TestAsyncBoundaryReceptionFaultPhase pins the unified phase mapping
// at the fault filter: with zero offsets and S=1 the source transmits
// over [0,1] and the reception completes at t=1.0, exactly on the
// phase-1/phase-2 boundary. Under the engine's convention the
// reception belongs to the phase it closes (phase 1), so a receiver
// whose crash phase is 2 must still get the packet. The pre-fix code
// filtered with floor(t/L)+1 = 2 while stamping firstPhase with
// ceil(t/L) = 1 — the same event landed in two different phases and
// the reception was lost.
func TestAsyncBoundaryReceptionFaultPhase(t *testing.T) {
	dep := lineDeployment(2)
	const horizon = 4
	var plan *faults.Plan
	for seed := int64(0); seed < 10000; seed++ {
		p, err := faults.New(faults.Config{CrashRate: 1}, 2, horizon, seed)
		if err != nil {
			t.Fatal(err)
		}
		if p.CrashPhase(1) == 2 {
			plan = p
			break
		}
	}
	if plan == nil {
		t.Fatal("no seed in range yields a node-1 crash at phase 2")
	}

	cfg := Config{S: 1, MaxPhases: horizon, Deployment: dep}
	cfg.applyDefaults()
	res, err := runAsyncOffsets(cfg, dep, rand.New(rand.NewSource(1)), plan, []float64{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if res.LostToFault != 0 {
		t.Fatalf("boundary reception filtered by the NEXT phase's fault state: LostToFault = %d", res.LostToFault)
	}
	if res.Reached != 2 {
		t.Fatalf("Reached = %d, want 2 (reception at t=1.0 completes within phase 1, before the crash at phase 2)", res.Reached)
	}
}

// TestTimelineBoundarySpanningTransmission pins buildTimeline's
// inclusive/exclusive boundary treatment. A transmission spanning a
// phase boundary — possible only with async offsets, e.g. [2.5, 3.5]
// with phaseLen 3 — completes in phase 2, together with any receptions
// it causes; the sample at the end of phase 1 must not count it. The
// pre-fix code counted transmissions by start time (tx < t), splitting
// a broadcast from its own receptions across two samples, which the
// slot-aligned engine's sample() can never do.
func TestTimelineBoundarySpanningTransmission(t *testing.T) {
	tl := buildTimeline(4, 3, []float64{3.5}, []float64{2.5})
	if tl.CumBroadcasts[1] != 0 {
		t.Fatalf("tx over [2.5, 3.5] counted at the phase-1 boundary: CumBroadcasts = %v", tl.CumBroadcasts)
	}
	if tl.CumBroadcasts[2] != 1 || tl.CumReach[2] != 0.5 {
		t.Fatalf("tx and its reception must land together in the phase-2 sample: CumBroadcasts = %v, CumReach = %v",
			tl.CumBroadcasts, tl.CumReach)
	}

	// A transmission ending exactly on a boundary closes the finishing
	// phase, in the same sample as its boundary-valued reception.
	tl = buildTimeline(4, 3, []float64{3.0}, []float64{2.0})
	if tl.CumBroadcasts[1] != 1 || tl.CumReach[1] != 0.5 {
		t.Fatalf("boundary-completing tx/rx must share the phase-1 sample: CumBroadcasts = %v, CumReach = %v",
			tl.CumBroadcasts, tl.CumReach)
	}
}

// TestBucketByPhaseBoundarySizing pins the bucket sizing to the same
// ceil convention as the index computation. The pre-fix sizing
// (ceil+1) always produced a phantom trailing zero bucket, and the
// silent idx clamp it papered over could misbin receptions.
func TestBucketByPhaseBoundarySizing(t *testing.T) {
	got := bucketByPhase([]float64{1.0, 2.5, 3.0}, 3)
	if want := []int{3}; !reflect.DeepEqual(got, want) {
		t.Fatalf("bucketByPhase = %v, want %v (all three receptions complete within phase 1)", got, want)
	}
	got = bucketByPhase([]float64{2.0, 3.5}, 3)
	if want := []int{1, 1}; !reflect.DeepEqual(got, want) {
		t.Fatalf("bucketByPhase = %v, want %v (boundary rx at 3.0 would close phase 1; 3.5 opens phase 2)", got, want)
	}
	if got := bucketByPhase(nil, 3); got != nil {
		t.Fatalf("bucketByPhase(nil) = %v, want nil", got)
	}
}

// TestAsyncTraceSlotUsesNodeOffset pins trace slot/phase labelling to
// the transmitting node's own phase grid. A lone node with offset 1.0
// and S=2 transmits at global time 1+s for its drawn slot s; the
// pre-fix code labelled the event int32(t) % S = (1+s) % 2 = 1-s — the
// wrong slot whenever the node's grid is shifted — and stamped the
// 0-based global phase floor(t/L) instead of the engine's 1-based
// start-instant phase.
func TestAsyncTraceSlotUsesNodeOffset(t *testing.T) {
	dep := lineDeployment(1)
	var col trace.Collector
	col.Cap = 8
	cfg := Config{S: 2, MaxPhases: 4, Deployment: dep, Tracer: &col}
	cfg.applyDefaults()

	const seed = 7
	// Mirror the engine's single slot draw: scheduleTx's rng.Intn(S) is
	// the run's only rand consumption (one node, no receptions).
	wantSlot := int32(rand.New(rand.NewSource(seed)).Intn(2))

	if _, err := runAsyncOffsets(cfg, dep, rand.New(rand.NewSource(seed)), nil, []float64{1.0}); err != nil {
		t.Fatal(err)
	}

	var tx *trace.Event
	for i, ev := range col.Events() {
		if ev.Kind == trace.KindTx {
			if tx != nil {
				t.Fatal("more than one transmission traced")
			}
			tx = &col.Events()[i]
		}
	}
	if tx == nil {
		t.Fatal("no transmission traced")
	}
	if tx.Slot != wantSlot {
		t.Fatalf("traced Slot = %d, want %d (slot on the node's own grid, offset 1.0)", tx.Slot, wantSlot)
	}
	txTime := 1.0 + float64(wantSlot)
	if want := txStartPhase(txTime, 2); tx.Phase != want {
		t.Fatalf("traced Phase = %d, want %d (1-based start-instant phase at t=%g)", tx.Phase, want, txTime)
	}
}

// TestPhaseAttributionHelpers documents the convention the helpers
// implement: mid-phase instants agree, boundary instants split — the
// start opens the next phase, the end closes the finished one.
func TestPhaseAttributionHelpers(t *testing.T) {
	if got := txStartPhase(4.5, 3); got != 2 {
		t.Errorf("txStartPhase(4.5, 3) = %d, want 2", got)
	}
	if got := rxEndPhase(4.5, 3); got != 2 {
		t.Errorf("rxEndPhase(4.5, 3) = %d, want 2", got)
	}
	if got := txStartPhase(6, 3); got != 3 {
		t.Errorf("txStartPhase(6, 3) = %d, want 3 (boundary start opens phase 3)", got)
	}
	if got := rxEndPhase(6, 3); got != 2 {
		t.Errorf("rxEndPhase(6, 3) = %d, want 2 (boundary end closes phase 2)", got)
	}
}

// TestLocalSlot exercises the node-local slot mapping: starts take the
// slot they open, completions the slot they close, and times before
// the node's first own phase wrap into the previous period.
func TestLocalSlot(t *testing.T) {
	cases := []struct {
		t, offset, phaseLen float64
		completion          bool
		want                int32
	}{
		{3.0, 0, 3, false, 0},   // boundary start opens slot 0
		{4.2, 1.2, 3, false, 0}, // exactly one period after the offset
		{2.5, 0.5, 3, false, 2}, // mid-slot start in the node's slot 2
		{3.0, 0, 3, true, 2},    // boundary completion closes the last slot
		{1.5, 0.5, 3, true, 0},  // completion on an interior slot edge closes slot 0
		{0.5, 2.5, 3, true, 0},  // before the node's first phase: wraps
	}
	for _, c := range cases {
		if got := localSlot(c.t, c.offset, c.phaseLen, c.completion); got != c.want {
			t.Errorf("localSlot(%g, %g, %g, %v) = %d, want %d",
				c.t, c.offset, c.phaseLen, c.completion, got, c.want)
		}
	}
}
