package sim

import (
	"math"
	"testing"

	"sensornet/internal/channel"
	"sensornet/internal/protocol"
)

func asyncCfg(rho, p float64, seed int64) Config {
	cfg := paperCfg(rho, p, seed)
	cfg.Async = true
	return cfg
}

func TestAsyncTimelineValid(t *testing.T) {
	res := mustRun(t, asyncCfg(40, 0.3, 1))
	if !res.Timeline.Valid() {
		t.Fatalf("invalid async timeline %+v", res.Timeline)
	}
}

func TestAsyncDeterministicForSeed(t *testing.T) {
	a := mustRun(t, asyncCfg(40, 0.3, 2))
	b := mustRun(t, asyncCfg(40, 0.3, 2))
	if a.Reached != b.Reached || a.Broadcasts != b.Broadcasts {
		t.Fatalf("async same-seed runs diverged")
	}
}

func TestAsyncCFMFloodingReachesComponent(t *testing.T) {
	cfg := asyncCfg(30, 1, 3)
	cfg.Model = channel.CFM
	cfg.Protocol = protocol.Flooding{}
	res := mustRun(t, cfg)
	if res.Reached != res.Connected {
		t.Fatalf("async CFM flooding reached %d of %d", res.Reached, res.Connected)
	}
}

func TestAsyncReachedConsistentWithTimeline(t *testing.T) {
	res := mustRun(t, asyncCfg(50, 0.4, 4))
	got := res.Timeline.FinalReachability()
	want := float64(res.Reached) / float64(res.N)
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("timeline reach %v vs counted %v", got, want)
	}
	if res.Timeline.TotalBroadcasts() != float64(res.Broadcasts) {
		t.Fatalf("timeline broadcasts %v vs counted %d",
			res.Timeline.TotalBroadcasts(), res.Broadcasts)
	}
}

func TestAsyncMatchesSyncOnAverage(t *testing.T) {
	// The paper analyses the aligned case but argues the algorithm
	// tolerates asynchrony; reachability should be in the same
	// ballpark. Average several seeds of each.
	avg := func(async bool) float64 {
		sum := 0.0
		for seed := int64(0); seed < 6; seed++ {
			cfg := paperCfg(60, 0.2, seed)
			cfg.Async = async
			sum += mustRun(t, cfg).Timeline.ReachabilityAtPhase(6)
		}
		return sum / 6
	}
	s, a := avg(false), avg(true)
	if math.Abs(s-a) > 0.25 {
		t.Fatalf("sync %v and async %v reachability diverge too much", s, a)
	}
}

func TestAsyncBellCurve(t *testing.T) {
	reach := func(p float64) float64 {
		sum := 0.0
		for seed := int64(0); seed < 3; seed++ {
			sum += mustRun(t, asyncCfg(100, p, seed)).Timeline.ReachabilityAtPhase(6)
		}
		return sum / 3
	}
	low, mid, flood := reach(0.02), reach(0.15), reach(1)
	if !(mid > low && mid > flood) {
		t.Fatalf("async bell curve missing: %v %v %v", low, mid, flood)
	}
}

func TestAsyncCarrierSense(t *testing.T) {
	cfg := asyncCfg(60, 0.3, 5)
	cfg.Model = channel.CAMCarrierSense
	res := mustRun(t, cfg)
	if !res.Timeline.Valid() {
		t.Fatal("carrier-sense async timeline invalid")
	}
	plain := mustRun(t, asyncCfg(60, 0.3, 5))
	if res.Reached > plain.Reached {
		t.Fatalf("carrier sense should not reach more: %d vs %d", res.Reached, plain.Reached)
	}
}

func TestAsyncSuccessRateBounded(t *testing.T) {
	cfg := asyncCfg(80, 1, 6)
	cfg.Protocol = protocol.Flooding{}
	res := mustRun(t, cfg)
	if res.SuccessRate < 0 || res.SuccessRate > 1 {
		t.Fatalf("async success rate %v outside [0,1]", res.SuccessRate)
	}
}

func TestAsyncMaxPhasesHorizon(t *testing.T) {
	cfg := asyncCfg(60, 1, 7)
	cfg.Protocol = protocol.Flooding{}
	cfg.MaxPhases = 3
	res := mustRun(t, cfg)
	if res.Timeline.Duration() > 4 {
		t.Fatalf("async duration %v beyond horizon+1", res.Timeline.Duration())
	}
}

func BenchmarkRunAsyncRho60(b *testing.B) {
	cfg := asyncCfg(60, 0.2, 1)
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i)
		if _, err := Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
