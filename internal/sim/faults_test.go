package sim

import (
	"fmt"
	"testing"

	"sensornet/internal/channel"
	"sensornet/internal/faults"
	"sensornet/internal/protocol"
	"sensornet/internal/trace"
)

// faultCfg keeps the horizon short: crash phases are uniform over
// MaxPhases, so a tight horizon makes them strike during the broadcast
// instead of long after it settles.
func faultCfg(fc faults.Config, seed int64) Config {
	return Config{
		P: 4, S: 3, Rho: 25,
		Model:     channel.CAM,
		Protocol:  protocol.Flooding{},
		Seed:      seed,
		MaxPhases: 10,
		Faults:    &fc,
	}
}

// TestFaultsDeterministicForSeed: with every fault process active, two
// runs at the same seed are byte-identical (the %#v rendering compares
// NaN ring arrivals too).
func TestFaultsDeterministicForSeed(t *testing.T) {
	fc := faults.Config{CrashRate: 0.2, LossRate: 0.15, DutyOn: 3, DutyOff: 1, EnergyCap: 2}
	for _, async := range []bool{false, true} {
		cfg := faultCfg(fc, 42)
		cfg.Async = async
		a := fmt.Sprintf("%#v", mustRun(t, cfg))
		b := fmt.Sprintf("%#v", mustRun(t, cfg))
		if a != b {
			t.Errorf("async=%v: same seed diverged:\n%s\nvs\n%s", async, a, b)
		}
		cfg.Seed = 43
		if c := fmt.Sprintf("%#v", mustRun(t, cfg)); c == a {
			t.Errorf("async=%v: different seeds suspiciously identical", async)
		}
	}
}

// TestFaultsNilAndDisabledMatchBaseline: a nil Faults pointer and a
// zero (disabled) Config both reproduce the fault-free run exactly.
func TestFaultsNilAndDisabledMatchBaseline(t *testing.T) {
	base := paperCfg(30, 1, 9)
	want := fmt.Sprintf("%#v", mustRun(t, base))
	disabled := base
	disabled.Faults = &faults.Config{}
	if got := fmt.Sprintf("%#v", mustRun(t, disabled)); got != want {
		t.Error("disabled fault config changed the run")
	}
}

func TestTotalLossNothingDelivered(t *testing.T) {
	for _, async := range []bool{false, true} {
		cfg := faultCfg(faults.Config{LossRate: 1}, 5)
		cfg.Async = async
		res := mustRun(t, cfg)
		if res.Reached != 1 || res.Delivered != 0 {
			t.Errorf("async=%v: LossRate 1 should strand the packet at the source: %+v", async, res)
		}
		if res.LostToFault == 0 {
			t.Errorf("async=%v: losses must be accounted as LostToFault", async)
		}
	}
}

func TestCrashReducesCoverage(t *testing.T) {
	clean := mustRun(t, faultCfg(faults.Config{}, 11))
	hurt := mustRun(t, faultCfg(faults.Config{CrashRate: 0.7}, 11))
	if hurt.Crashed == 0 {
		t.Fatal("CrashRate 0.7 realised no crashes")
	}
	if hurt.Reached >= clean.Reached {
		t.Errorf("crashes should cost coverage: %d with faults vs %d clean",
			hurt.Reached, clean.Reached)
	}
}

// TestCrashCoverageMonotoneCFM: under CFM (no collisions, no loss),
// the reached set can only shrink as the crash rate rises, because the
// coupled crash draws nest the crashed sets at a fixed seed.
func TestCrashCoverageMonotoneCFM(t *testing.T) {
	prev := -1
	for _, rate := range []float64{0.9, 0.6, 0.3, 0} {
		cfg := faultCfg(faults.Config{CrashRate: rate}, 21)
		cfg.Model = channel.CFM
		res := mustRun(t, cfg)
		if prev >= 0 && res.Reached < prev {
			t.Fatalf("coverage fell from %d to %d when the crash rate dropped to %g",
				prev, res.Reached, rate)
		}
		prev = res.Reached
	}
}

func TestEnergyCapDepletesRelays(t *testing.T) {
	// Every flooding relay transmits once at unit CAM energy; a tiny cap
	// means each transmitter depletes right after its broadcast.
	res := mustRun(t, faultCfg(faults.Config{EnergyCap: 0.5}, 13))
	if res.Depleted == 0 {
		t.Fatal("a sub-unit energy cap must deplete transmitters")
	}
	if res.Depleted >= res.Broadcasts {
		t.Errorf("the source never depletes: Depleted %d vs Broadcasts %d",
			res.Depleted, res.Broadcasts)
	}
}

func TestDutyCycleStillSpreads(t *testing.T) {
	for _, async := range []bool{false, true} {
		cfg := faultCfg(faults.Config{DutyOn: 1, DutyOff: 1}, 17)
		cfg.Async = async
		res := mustRun(t, cfg)
		// Sleeping nodes defer rather than lose their broadcast, so the
		// packet still spreads beyond the source's neighbourhood.
		if res.Reached <= 1 || res.Broadcasts <= 1 {
			t.Errorf("async=%v: duty-cycled broadcast stalled: %+v", async, res)
		}
	}
}

// TestFaultMetricsMatchTrace: the Result counters are the same
// quantities the tracer observes, for both engines.
func TestFaultMetricsMatchTrace(t *testing.T) {
	for _, async := range []bool{false, true} {
		var tr trace.Collector
		cfg := faultCfg(faults.Config{CrashRate: 0.3, LossRate: 0.2}, 23)
		cfg.Async = async
		cfg.Tracer = &tr
		res := mustRun(t, cfg)
		tot := tr.Totals()
		if res.Delivered != tot.Deliveries {
			t.Errorf("async=%v: Delivered %d vs traced %d", async, res.Delivered, tot.Deliveries)
		}
		if res.LostToFault != tot.Drops {
			t.Errorf("async=%v: LostToFault %d vs traced %d", async, res.LostToFault, tot.Drops)
		}
		if res.LostToCollision != tot.Collisions {
			t.Errorf("async=%v: LostToCollision %d vs traced %d", async, res.LostToCollision, tot.Collisions)
		}
		if res.LostToFault == 0 {
			t.Errorf("async=%v: expected some fault losses at LossRate 0.2", async)
		}
	}
}

// TestFaultFreeCountersStillFilled: Delivered and LostToCollision are
// populated with no fault plan too — they are general channel metrics.
func TestFaultFreeCountersStillFilled(t *testing.T) {
	res := mustRun(t, paperCfg(40, 1, 29))
	if res.Delivered == 0 {
		t.Error("fault-free run delivered nothing")
	}
	if res.LostToFault != 0 || res.Crashed != 0 || res.Depleted != 0 {
		t.Errorf("fault counters must be zero without a plan: %+v", res)
	}
}

func TestFaultsRejectInvalidConfig(t *testing.T) {
	if _, err := Run(faultCfg(faults.Config{CrashRate: 2}, 1)); err == nil {
		t.Fatal("invalid fault config must fail validation")
	}
}
