package sim

import (
	"context"
	"fmt"
	"math"

	"sensornet/internal/metrics"
)

// Aggregate is the cross-run summary RunMany produces: per-run metric
// samples plus the pointwise-mean timeline, mirroring how the paper
// averages 30 random runs per configuration.
type Aggregate struct {
	// Runs holds the individual run results, in seed order.
	Runs []*Result
	// Mean is the pointwise-average timeline over all runs.
	Mean metrics.Timeline
}

// RunMany executes `runs` independent simulations with seeds Seed,
// Seed+1, ... and aggregates them. Runs execute in parallel, bounded by
// `workers` (<= 0 means one worker per run, capped internally by the
// scheduler).
func RunMany(cfg Config, runs, workers int) (*Aggregate, error) {
	return RunManyCtx(context.Background(), cfg, runs, workers)
}

// RunManyCtx is RunMany with cooperative cancellation: replications not
// yet started when ctx is cancelled are skipped and the context's error
// is returned (wrapped, so errors.Is(err, context.Canceled) holds).
// Per-replication seeds (Seed+i) and the aggregation order are
// index-derived, so the aggregate is identical for any worker count.
func RunManyCtx(ctx context.Context, cfg Config, runs, workers int) (*Aggregate, error) {
	if runs <= 0 {
		return nil, fmt.Errorf("sim: runs must be > 0, got %d", runs)
	}
	if workers <= 0 || workers > runs {
		workers = runs
	}
	results := make([]*Result, runs)
	errs := make([]error, runs)
	sem := make(chan struct{}, workers)
	done := make(chan int, runs)
	for i := 0; i < runs; i++ {
		//lint:ignore baregoroutine replication fan-out predates the engine pool: sem-bounded, ctx-checked, and aggregated in index order
		go func(i int) {
			sem <- struct{}{}
			defer func() { <-sem; done <- i }()
			if err := ctx.Err(); err != nil {
				errs[i] = err
				return
			}
			c := cfg
			//lint:ignore seedderive seeds Seed..Seed+runs-1 are RunMany's documented public contract (paper's 30-run averages)
			c.Seed = cfg.Seed + int64(i)
			results[i], errs[i] = Run(c)
		}(i)
	}
	for i := 0; i < runs; i++ {
		<-done
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("sim: aborted after cancellation: %w", context.Cause(ctx))
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	agg := &Aggregate{Runs: results}
	tls := make([]metrics.Timeline, runs)
	for i, r := range results {
		tls[i] = r.Timeline
	}
	agg.Mean = metrics.MeanTimeline(tls)
	return agg, nil
}

// ReachabilityAtPhase returns the per-run samples of metric 1.
func (a *Aggregate) ReachabilityAtPhase(l float64) []float64 {
	out := make([]float64, len(a.Runs))
	for i, r := range a.Runs {
		out[i] = r.Timeline.ReachabilityAtPhase(l)
	}
	return out
}

// LatencyToReach returns the per-run samples of metric 3; infeasible
// runs yield NaN.
func (a *Aggregate) LatencyToReach(target float64) []float64 {
	out := make([]float64, len(a.Runs))
	for i, r := range a.Runs {
		if l, ok := r.Timeline.LatencyToReach(target); ok {
			out[i] = l
		} else {
			out[i] = math.NaN()
		}
	}
	return out
}

// BroadcastsToReach returns the per-run samples of metric 4; infeasible
// runs yield NaN.
func (a *Aggregate) BroadcastsToReach(target float64) []float64 {
	out := make([]float64, len(a.Runs))
	for i, r := range a.Runs {
		if b, ok := r.Timeline.BroadcastsToReach(target); ok {
			out[i] = b
		} else {
			out[i] = math.NaN()
		}
	}
	return out
}

// ReachabilityAtBudget returns the per-run samples of metric 5.
func (a *Aggregate) ReachabilityAtBudget(budget float64) []float64 {
	out := make([]float64, len(a.Runs))
	for i, r := range a.Runs {
		out[i] = r.Timeline.ReachabilityAtBudget(budget)
	}
	return out
}

// SuccessRates returns the per-run mean broadcast success rates.
func (a *Aggregate) SuccessRates() []float64 {
	out := make([]float64, len(a.Runs))
	for i, r := range a.Runs {
		out[i] = r.SuccessRate
	}
	return out
}
