package sim

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"sensornet/internal/deploy"
	"sensornet/internal/engine"
	"sensornet/internal/metrics"
)

// Aggregate is the cross-run summary RunMany produces: per-run metric
// samples plus the pointwise-mean timeline, mirroring how the paper
// averages 30 random runs per configuration.
type Aggregate struct {
	// Runs holds the individual run results, in seed order.
	Runs []*Result
	// Mean is the pointwise-average timeline over all runs.
	Mean metrics.Timeline
}

// RunMany executes `runs` independent simulations with seeds Seed,
// Seed+1, ... and aggregates them. Runs execute in parallel on an
// engine worker pool, bounded by `workers` (<= 0 means one worker per
// CPU, the engine's default).
func RunMany(cfg Config, runs, workers int) (*Aggregate, error) {
	return RunManyCtx(context.Background(), cfg, runs, workers)
}

// replicationConfig returns the configuration of replication i.
// Per-replication seeds Seed..Seed+runs-1 are RunMany's documented
// public contract (the paper's 30-run averages), and the common-random-
// numbers ladder the optimizer relies on.
func replicationConfig(cfg Config, i int) Config {
	c := cfg
	//lint:ignore seedderive seeds Seed..Seed+runs-1 are RunMany's documented public contract (paper's 30-run averages)
	c.Seed = cfg.Seed + int64(i)
	return c
}

// RunManyCtx is RunMany with cooperative cancellation: replications not
// yet started when ctx is cancelled are skipped and the context's error
// is returned (wrapped, so errors.Is(err, context.Canceled) holds).
// Per-replication seeds (Seed+i) and the aggregation order are
// index-derived, so the aggregate is identical for any worker count.
//
// The fan-out runs on an internal/engine pool, inheriting its panic
// recovery (a panicking replication surfaces as an error instead of
// crashing the process).
func RunManyCtx(ctx context.Context, cfg Config, runs, workers int) (*Aggregate, error) {
	return runManyCtx(ctx, cfg, runs, workers, nil)
}

// ReplicationDeployments samples the deployment each replication
// i = 0..runs-1 would use, one per replication, without running
// anything. The deployment of replication i derives from the
// replication's own seed (Seed+i) through a dedicated stream, so it is
// independent of the protocol draws and can be shared across
// configurations that vary only protocol parameters: running
// Run(replication i's config with Deployment = deps[i]) for two
// probabilities compares them on identical fields — common random
// numbers for the deployment component. SweepSim applies exactly this.
func ReplicationDeployments(cfg Config, runs int) ([]*deploy.Deployment, error) {
	if runs <= 0 {
		return nil, fmt.Errorf("sim: runs must be > 0, got %d", runs)
	}
	cfg.applyDefaults()
	out := make([]*deploy.Deployment, runs)
	for i := range out {
		seed := replicationConfig(cfg, i).Seed
		rng := rand.New(rand.NewSource(engine.DeriveSeed(seed, "sim", "deployment")))
		d, err := deploy.Generate(deployConfig(&cfg), rng)
		if err != nil {
			return nil, err
		}
		out[i] = d
	}
	return out, nil
}

// RunManyDeployments is RunMany with a pre-sampled deployment per
// replication (deps[i] for replication i, which keeps seed Seed+i for
// its protocol draws). The replication count is len(deps). Use
// ReplicationDeployments to sample the slice once and share it across
// several RunManyDeployments calls that vary protocol parameters.
func RunManyDeployments(cfg Config, deps []*deploy.Deployment, workers int) (*Aggregate, error) {
	return RunManyDeploymentsCtx(context.Background(), cfg, deps, workers)
}

// RunManyDeploymentsCtx is RunManyDeployments with cooperative
// cancellation, under RunManyCtx's contract.
func RunManyDeploymentsCtx(ctx context.Context, cfg Config, deps []*deploy.Deployment, workers int) (*Aggregate, error) {
	return runManyCtx(ctx, cfg, len(deps), workers, deps)
}

func runManyCtx(ctx context.Context, cfg Config, runs, workers int, deps []*deploy.Deployment) (*Aggregate, error) {
	if runs <= 0 {
		return nil, fmt.Errorf("sim: runs must be > 0, got %d", runs)
	}
	if workers > runs {
		workers = runs
	}
	eng := engine.New(engine.Config{Workers: workers})
	idx := make([]int, runs)
	for i := range idx {
		idx[i] = i
	}
	results, err := engine.Map(ctx, eng, "sim-replication", idx,
		func(ctx context.Context, i, _ int) (*Result, error) {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			c := replicationConfig(cfg, i)
			if deps != nil {
				c.Deployment = deps[i]
			}
			return Run(c)
		})
	if err != nil {
		if ctx.Err() != nil {
			return nil, fmt.Errorf("sim: aborted after cancellation: %w", context.Cause(ctx))
		}
		return nil, err
	}
	agg := &Aggregate{Runs: results}
	tls := make([]metrics.Timeline, runs)
	for i, r := range results {
		tls[i] = r.Timeline
	}
	agg.Mean = metrics.MeanTimeline(tls)
	return agg, nil
}

// ReachabilityAtPhase returns the per-run samples of metric 1.
func (a *Aggregate) ReachabilityAtPhase(l float64) []float64 {
	out := make([]float64, len(a.Runs))
	for i, r := range a.Runs {
		out[i] = r.Timeline.ReachabilityAtPhase(l)
	}
	return out
}

// LatencyToReach returns the per-run samples of metric 3; infeasible
// runs yield NaN.
func (a *Aggregate) LatencyToReach(target float64) []float64 {
	out := make([]float64, len(a.Runs))
	for i, r := range a.Runs {
		if l, ok := r.Timeline.LatencyToReach(target); ok {
			out[i] = l
		} else {
			out[i] = math.NaN()
		}
	}
	return out
}

// BroadcastsToReach returns the per-run samples of metric 4; infeasible
// runs yield NaN.
func (a *Aggregate) BroadcastsToReach(target float64) []float64 {
	out := make([]float64, len(a.Runs))
	for i, r := range a.Runs {
		if b, ok := r.Timeline.BroadcastsToReach(target); ok {
			out[i] = b
		} else {
			out[i] = math.NaN()
		}
	}
	return out
}

// ReachabilityAtBudget returns the per-run samples of metric 5.
func (a *Aggregate) ReachabilityAtBudget(budget float64) []float64 {
	out := make([]float64, len(a.Runs))
	for i, r := range a.Runs {
		out[i] = r.Timeline.ReachabilityAtBudget(budget)
	}
	return out
}

// SuccessRates returns the per-run mean broadcast success rates.
func (a *Aggregate) SuccessRates() []float64 {
	out := make([]float64, len(a.Runs))
	for i, r := range a.Runs {
		out[i] = r.SuccessRate
	}
	return out
}
