package sim

import (
	"math"
	"testing"

	"sensornet/internal/metrics"
)

func TestRunManyBasics(t *testing.T) {
	agg, err := RunMany(paperCfg(40, 0.3, 100), 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(agg.Runs) != 8 {
		t.Fatalf("got %d runs, want 8", len(agg.Runs))
	}
	if !agg.Mean.Valid() {
		t.Fatal("mean timeline invalid")
	}
}

func TestRunManyRejectsZeroRuns(t *testing.T) {
	if _, err := RunMany(paperCfg(40, 0.3, 1), 0, 1); err == nil {
		t.Fatal("expected error for zero runs")
	}
}

func TestRunManySeedsDiffer(t *testing.T) {
	agg, err := RunMany(paperCfg(40, 0.3, 200), 6, 0)
	if err != nil {
		t.Fatal(err)
	}
	distinct := map[int]bool{}
	for _, r := range agg.Runs {
		distinct[r.Reached] = true
	}
	if len(distinct) < 2 {
		t.Fatal("runs look identical; seeds may not vary")
	}
}

func TestRunManyDeterministicAggregate(t *testing.T) {
	a, err := RunMany(paperCfg(40, 0.3, 300), 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunMany(paperCfg(40, 0.3, 300), 5, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Runs {
		if a.Runs[i].Reached != b.Runs[i].Reached {
			t.Fatalf("run %d differs across worker counts", i)
		}
	}
}

func TestAggregateMetricSamples(t *testing.T) {
	agg, err := RunMany(paperCfg(60, 0.2, 400), 6, 3)
	if err != nil {
		t.Fatal(err)
	}
	reach := agg.ReachabilityAtPhase(5)
	if len(reach) != 6 {
		t.Fatalf("sample count %d, want 6", len(reach))
	}
	s := metrics.Summarize(reach)
	if s.Count != 6 || s.Mean <= 0 || s.Mean > 1 {
		t.Fatalf("reach summary implausible: %+v", s)
	}

	lat := agg.LatencyToReach(0.5)
	for _, v := range lat {
		if !math.IsNaN(v) && v <= 0 {
			t.Fatalf("non-positive latency sample %v", v)
		}
	}

	bc := agg.BroadcastsToReach(0.3)
	budget := agg.ReachabilityAtBudget(50)
	if len(bc) != 6 || len(budget) != 6 {
		t.Fatal("sample lengths wrong")
	}
	for _, v := range budget {
		if v < 0 || v > 1 {
			t.Fatalf("budget reach sample %v outside [0,1]", v)
		}
	}

	rates := agg.SuccessRates()
	for _, v := range rates {
		if v < 0 || v > 1 {
			t.Fatalf("success rate sample %v outside [0,1]", v)
		}
	}
}

func TestLatencyInfeasibleRunsAreNaN(t *testing.T) {
	// p = 0: only the source's neighbours ever receive; 90% reach is
	// infeasible in every run.
	agg, err := RunMany(paperCfg(40, 0, 500), 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range agg.LatencyToReach(0.9) {
		if !math.IsNaN(v) {
			t.Fatalf("expected NaN for infeasible run, got %v", v)
		}
	}
	if got := metrics.FeasibleFraction(agg.LatencyToReach(0.9)); got != 0 {
		t.Fatalf("feasible fraction %v, want 0", got)
	}
}
