package sim

import (
	"math"
	"testing"

	"sensornet/internal/analytic"
	"sensornet/internal/channel"
	"sensornet/internal/protocol"
)

func TestRingStatsBasicInvariants(t *testing.T) {
	res := mustRun(t, paperCfg(40, 0.3, 31))
	if len(res.RingReached) != 5 || len(res.RingNodes) != 5 || len(res.RingArrival) != 5 {
		t.Fatalf("ring stats length wrong: %+v", res)
	}
	totalNodes, totalReached := 0, 0
	for j := range res.RingNodes {
		if res.RingReached[j] > res.RingNodes[j] {
			t.Fatalf("ring %d reached %d > nodes %d", j+1, res.RingReached[j], res.RingNodes[j])
		}
		totalNodes += res.RingNodes[j]
		totalReached += res.RingReached[j]
	}
	if totalNodes != res.N {
		t.Fatalf("ring populations sum to %d, want %d", totalNodes, res.N)
	}
	if totalReached != res.Reached {
		t.Fatalf("ring reached sum to %d, want %d", totalReached, res.Reached)
	}
}

func TestRingArrivalMonotone(t *testing.T) {
	// The wavefront moves outward: mean arrival phases increase with
	// ring index (flooding at a healthy density, averaged over seeds).
	var arrivals [5]float64
	var counts [5]int
	for seed := int64(0); seed < 5; seed++ {
		cfg := paperCfg(40, 1, 40+seed)
		cfg.Protocol = protocol.Flooding{}
		res := mustRun(t, cfg)
		for j, a := range res.RingArrival {
			if !math.IsNaN(a) {
				arrivals[j] += a
				counts[j]++
			}
		}
	}
	prev := -1.0
	for j := range arrivals {
		if counts[j] == 0 {
			continue
		}
		mean := arrivals[j] / float64(counts[j])
		if mean < prev {
			t.Fatalf("wavefront not monotone at ring %d: %v < %v", j+1, mean, prev)
		}
		prev = mean
	}
}

func TestRingArrivalMatchesAnalyticWavefront(t *testing.T) {
	// Deep cross-validation: the analytic recursion predicts when each
	// ring receives the packet (expected arrival phase); the simulated
	// wavefront should track it within a phase or so at a
	// well-behaved operating point.
	rho, p := 60.0, 0.3
	ana, err := analytic.Run(analytic.Config{P: 5, S: 3, Rho: rho, Prob: p})
	if err != nil {
		t.Fatal(err)
	}
	// Analytic mean arrival phase per ring: sum over phases of
	// phase * n_j^phase / total received in ring j.
	var anaArrival [5]float64
	var anaMass [5]float64
	for phaseIdx, rings := range ana.RingReceived {
		for j, v := range rings {
			anaArrival[j] += float64(phaseIdx+1) * v
			anaMass[j] += v
		}
	}
	for j := range anaArrival {
		if anaMass[j] > 0 {
			anaArrival[j] /= anaMass[j]
		}
	}

	var simArrival [5]float64
	var simCount [5]int
	const runs = 6
	for seed := int64(0); seed < runs; seed++ {
		res := mustRun(t, paperCfg(rho, p, 60+seed))
		for j, a := range res.RingArrival {
			if !math.IsNaN(a) {
				simArrival[j] += a
				simCount[j]++
			}
		}
	}
	for j := 1; j < 5; j++ { // skip ring 1 (arrival 1 by construction)
		if simCount[j] == 0 || anaMass[j] == 0 {
			continue
		}
		sim := simArrival[j] / float64(simCount[j])
		if math.Abs(sim-anaArrival[j]) > 2.0 {
			t.Fatalf("ring %d arrival: sim %v vs analytic %v", j+1, sim, anaArrival[j])
		}
	}
}

func TestRingOneArrivalIsPhaseOne(t *testing.T) {
	res := mustRun(t, paperCfg(40, 0.5, 33))
	// Everyone in ring 1 hears the solo source broadcast in phase 1;
	// the source itself (phase 0) pulls the mean slightly below 1.
	if res.RingArrival[0] > 1 || res.RingArrival[0] < 0.8 {
		t.Fatalf("ring 1 arrival %v, want ~1", res.RingArrival[0])
	}
	if res.RingReached[0] != res.RingNodes[0] {
		t.Fatalf("ring 1 should be fully covered: %d/%d",
			res.RingReached[0], res.RingNodes[0])
	}
}

func TestRingStatsAsyncEngine(t *testing.T) {
	res := mustRun(t, asyncCfg(40, 0.3, 34))
	total := 0
	for _, v := range res.RingReached {
		total += v
	}
	if total != res.Reached {
		t.Fatalf("async ring reached %d != reached %d", total, res.Reached)
	}
}

func TestRingStatsCFM(t *testing.T) {
	cfg := paperCfg(30, 1, 35)
	cfg.Model = channel.CFM
	cfg.Protocol = protocol.Flooding{}
	res := mustRun(t, cfg)
	for j := range res.RingReached {
		// CFM flooding covers every connected node; rings should be
		// essentially full at rho=30.
		if float64(res.RingReached[j]) < 0.9*float64(res.RingNodes[j]) {
			t.Fatalf("CFM ring %d coverage %d/%d", j+1, res.RingReached[j], res.RingNodes[j])
		}
	}
}
