// Package sim is the network simulator used to validate the analytical
// framework — the role GloMoSim plays in the paper's §5, rebuilt on the
// repository's own deployment, channel, and protocol substrates.
//
// Executions follow the PB_CAM schedule of §4.2: time is organised in
// phases of S slots; the source transmits in phase 1; a node that first
// decodes the packet runs its protocol decision and, if positive,
// transmits once in a uniformly random slot of its next phase. The
// default engine assumes network-wide slot alignment (the assumption the
// paper makes for analysis); the asynchronous engine gives every node a
// random phase offset and resolves collisions in continuous time on a
// discrete-event kernel, exercising the paper's remark that the
// algorithm itself needs no synchronisation.
package sim

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"sensornet/internal/channel"
	"sensornet/internal/deploy"
	"sensornet/internal/engine"
	"sensornet/internal/faults"
	"sensornet/internal/metrics"
	"sensornet/internal/protocol"
	"sensornet/internal/trace"
)

// Config parameterises one simulation run.
type Config struct {
	// P, R, Rho, N describe the deployment (see deploy.Config).
	P   int
	R   float64
	Rho float64
	N   int
	// S is the number of slots per phase (paper: 3).
	S int
	// Model is the link-level communication model (default CAM).
	Model channel.Model
	// SINR parameterises the physical-interference model; consulted
	// only when Model is channel.ModelSINR. The zero value means
	// channel.DefaultSINRParams().
	SINR channel.SINRParams
	// Protocol is the broadcast scheme (default Flooding).
	Protocol protocol.Protocol
	// Seed drives deployment sampling and every protocol coin flip.
	Seed int64
	// Async enables per-node random phase offsets with continuous-time
	// collision resolution.
	Async bool
	// MaxPhases caps the execution length (default 1000).
	MaxPhases int
	// Deployment, when non-nil, is used instead of sampling a fresh
	// one (the deployment's own parameters then take precedence).
	Deployment *deploy.Deployment
	// Faults, when non-nil and enabled, layers a deterministic fault
	// plan (crash-stop, duty cycling, energy depletion, link loss) on
	// top of the communication model. The plan's streams derive from
	// Seed via engine.DeriveSeed, so equal seeds yield byte-identical
	// fault timelines.
	Faults *faults.Config
	// Tracer, when non-nil, receives every channel event (see the
	// trace package). Tracing adds per-event overhead; leave nil in
	// parameter sweeps.
	Tracer trace.Tracer
}

func (c *Config) applyDefaults() {
	//lint:ignore floateq exact zero is the "unset" sentinel for config fields, not a computed value
	if c.R == 0 {
		c.R = 1
	}
	if c.MaxPhases == 0 {
		c.MaxPhases = 1000
	}
	if c.Protocol == nil {
		c.Protocol = protocol.Flooding{}
	}
	if c.Model == channel.ModelSINR && c.SINR == (channel.SINRParams{}) {
		c.SINR = channel.DefaultSINRParams()
	}
}

// deployConfig is the deployment the run samples when none is supplied:
// sensing lists for carrier sensing and SINR (the interference annulus),
// gain tables only for SINR. GainAlpha does not perturb positions — the
// sampler consumes the rng before the neighbour build — so the same seed
// places nodes identically across all three channel models (common
// random numbers across the model axis).
func deployConfig(cfg *Config) deploy.Config {
	dc := deploy.Config{
		P: cfg.P, R: cfg.R, Rho: cfg.Rho, N: cfg.N,
		WithSensing: cfg.Model == channel.CAMCarrierSense || cfg.Model == channel.ModelSINR,
	}
	if cfg.Model == channel.ModelSINR {
		dc.GainAlpha = cfg.SINR.Alpha
	}
	return dc
}

// Validate reports whether the configuration is runnable.
func (c Config) Validate() error {
	if c.S < 1 {
		return errors.New("sim: S must be >= 1")
	}
	if c.Deployment == nil {
		dc := deploy.Config{P: c.P, R: c.R, Rho: c.Rho, N: c.N}
		if err := dc.Validate(); err != nil {
			return fmt.Errorf("sim: %w", err)
		}
	}
	if c.MaxPhases < 0 {
		return errors.New("sim: MaxPhases must be >= 0")
	}
	if c.Faults != nil {
		if err := c.Faults.Validate(); err != nil {
			return fmt.Errorf("sim: %w", err)
		}
	}
	return nil
}

// Result is the outcome of one simulation run.
type Result struct {
	// Timeline carries cumulative reachability and broadcast counts at
	// phase boundaries, in the shared metrics shape.
	Timeline metrics.Timeline
	// N is the node count, Reached the nodes holding the packet at
	// termination (source included), Broadcasts the transmissions
	// performed.
	N          int
	Reached    int
	Broadcasts int
	// Connected is the number of nodes reachable from the source in
	// the communication graph: the ceiling on Reached.
	Connected int
	// SuccessRate is the mean, over transmissions, of the fraction of
	// the transmitter's neighbours that decoded the packet (Fig. 12's
	// measured quantity). NaN-free: transmissions with no neighbours
	// count as zero-success.
	SuccessRate float64
	// PhaseNew[i] is the number of first receptions during phase i+1.
	PhaseNew []int
	// RingReached[j-1] counts the nodes of ring j holding the packet
	// at termination (the source counts towards ring 1); RingNodes is
	// the ring population. Together they resolve the broadcast
	// wavefront by ring, the quantity the analytic recursion predicts.
	RingReached []int
	RingNodes   []int
	// RingArrival[j-1] is the mean phase of first reception in ring j
	// (NaN for unreached rings).
	RingArrival []float64
	// Delivered counts successful packet receptions (duplicates
	// included); LostToCollision counts receptions destroyed by CAM
	// collisions (one per receiver per slot, matching
	// trace.KindCollision); LostToFault counts receptions lost to the
	// fault plan instead — down receivers and per-packet link loss, one
	// per (transmitter, receiver) pair.
	Delivered       int
	LostToCollision int
	LostToFault     int
	// Crashed counts the nodes the fault plan crash-stops within the
	// horizon; Depleted counts nodes killed by energy-budget depletion
	// during the run. Both are zero without a fault plan.
	Crashed  int
	Depleted int
}

// Run executes one simulation.
func Run(cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg.applyDefaults()
	//lint:ignore seedderive Config.Seed is the run's root seed; campaigns derive it per row via engine.DeriveSeed
	rng := rand.New(rand.NewSource(cfg.Seed))
	dep := cfg.Deployment
	if dep == nil {
		var err error
		dep, err = deploy.Generate(deployConfig(&cfg), rng)
		if err != nil {
			return nil, err
		}
	}
	var plan *faults.Plan
	if cfg.Faults != nil && cfg.Faults.Enabled() {
		p, err := faults.New(*cfg.Faults, dep.N(), cfg.MaxPhases,
			engine.DeriveSeed(cfg.Seed, "sim", "faults"))
		if err != nil {
			return nil, err
		}
		plan = p
	}
	if cfg.Async {
		return runAsync(cfg, dep, rng, plan)
	}
	return runSync(cfg, dep, rng, plan)
}

// newResolver builds the slot resolver for the configured model,
// threading the run's SINR parameters through when they apply.
func newResolver(cfg *Config, dep *deploy.Deployment) (*channel.Resolver, error) {
	if cfg.Model == channel.ModelSINR {
		return channel.NewResolverSINR(dep, cfg.SINR)
	}
	return channel.NewResolver(cfg.Model, dep)
}

// noTx marks a node with no pending transmission.
const noTx = -1

// syncRun is the slot-aligned engine's per-run state. Everything the
// slot loop touches — node state, per-slot scratch, and the delivery /
// collision / fault-loss callbacks handed to the channel resolver —
// lives on this struct and is allocated once per run, so the steady
// state of the loop performs zero heap allocations per slot. The
// callbacks are bound once in newSyncRun (a closure allocated per slot
// escapes to the heap via the resolver call); phase and slot are fields
// the loop updates so the bound callbacks always observe the current
// slot.
type syncRun struct {
	cfg      *Config
	dep      *deploy.Deployment
	rng      *rand.Rand
	plan     *faults.Plan
	state    protocol.State
	resolver *channel.Resolver
	res      *Result

	phase int32 // current time phase (trace records, fault filters)
	slot  int32 // current slot within the phase

	energyCost float64

	txSlot      []int32 // slot of the pending transmission, noTx if none
	txPhase     []int32
	hasPacket   []bool
	cancelled   []bool
	firstPhase  []int32
	deliveredBy []int32   // per-slot delivery counts, reset after use
	bySlot      [][]int32 // transmitters per slot, reused across phases

	// First receptions of the current slot, recorded flat (receiver,
	// transmitter) and replayed after resolution; reused across slots.
	firstTo   []int32
	firstFrom []int32

	pendingCount int
	reached      int
	broadcasts   int
	succSum      float64
	succN        int

	deliverFn func(from, to int32)
	collideFn func(to, heard int32)
	dropFn    func(from, to int32)
}

// newSyncRun allocates the run state and binds the resolver callbacks.
func newSyncRun(cfg *Config, dep *deploy.Deployment, rng *rand.Rand, plan *faults.Plan) (*syncRun, error) {
	resolver, err := newResolver(cfg, dep)
	if err != nil {
		return nil, err
	}
	n := dep.N()
	r := &syncRun{
		cfg: cfg, dep: dep, rng: rng, plan: plan,
		state:       cfg.Protocol.NewState(n),
		resolver:    resolver,
		res:         &Result{N: n, Connected: dep.ReachableFromSource()},
		energyCost:  channel.DefaultCosts(cfg.Model).Energy,
		txSlot:      make([]int32, n),
		txPhase:     make([]int32, n),
		hasPacket:   make([]bool, n),
		cancelled:   make([]bool, n),
		firstPhase:  make([]int32, n),
		deliveredBy: make([]int32, n),
		bySlot:      make([][]int32, cfg.S),
	}
	r.res.Timeline.N = float64(n)
	for i := range r.txSlot {
		r.txSlot[i] = noTx
		r.firstPhase[i] = -1
	}
	r.firstPhase[0] = 0
	r.deliverFn = r.deliver
	r.collideFn = r.collide
	r.dropFn = r.drop
	return r, nil
}

// syncRun implements channel.Faults for its own fault plan, saving the
// per-slot adapter value (an interface conversion heap-allocates).
func (r *syncRun) TxUp(u int32) bool              { return r.plan.Up(u, r.phase) }
func (r *syncRun) RxUp(v int32) bool              { return r.plan.Up(v, r.phase) }
func (r *syncRun) DropPacket(from, to int32) bool { return r.plan.Drop() }

func (r *syncRun) record(k trace.Kind, node, other int32) {
	if r.cfg.Tracer != nil {
		r.cfg.Tracer.Record(trace.Event{
			Kind: k, Phase: r.phase, Slot: r.slot,
			Node: node, Other: other,
		})
	}
}

func (r *syncRun) sample() {
	tl := &r.res.Timeline
	tl.Phases = append(tl.Phases, float64(r.phase))
	tl.CumReach = append(tl.CumReach, float64(r.reached)/float64(r.res.N))
	tl.CumBroadcasts = append(tl.CumBroadcasts, float64(r.broadcasts))
}

// deliver is the resolver's success callback.
func (r *syncRun) deliver(from, to int32) {
	r.res.Delivered++
	r.deliveredBy[from]++
	r.record(trace.KindDeliver, to, from)
	if !r.hasPacket[to] {
		r.firstTo = append(r.firstTo, to)
		r.firstFrom = append(r.firstFrom, from)
		r.hasPacket[to] = true
		r.record(trace.KindFirstReceive, to, from)
	} else if r.txSlot[to] != noTx && !r.cancelled[to] {
		d := r.dep.Pos[to].Dist(r.dep.Pos[from])
		ctx := protocol.Ctx{Phase: r.phase, Degree: r.dep.Degree(int(to))}
		if !r.state.OnDuplicate(to, from, d, ctx) {
			r.cancelled[to] = true
			r.pendingCount--
			r.record(trace.KindCancel, to, from)
		}
	}
}

// collide is the resolver's destroyed-reception callback.
func (r *syncRun) collide(to, heard int32) {
	r.res.LostToCollision++
	r.record(trace.KindCollision, to, heard)
}

// drop is the resolver's fault-loss callback.
func (r *syncRun) drop(from, to int32) {
	r.res.LostToFault++
	r.record(trace.KindDrop, to, from)
}

// runSync executes the slot-aligned engine.
func runSync(cfg Config, dep *deploy.Deployment, rng *rand.Rand, plan *faults.Plan) (*Result, error) {
	r, err := newSyncRun(&cfg, dep, rng, plan)
	if err != nil {
		return nil, err
	}
	n := dep.N()
	res := r.res

	// Phase 0 anchor: only the source holds the packet.
	r.hasPacket[0] = true
	r.reached = 1
	r.sample()

	// The source transmits in a random slot of phase 1.
	r.txSlot[0] = int32(rng.Intn(cfg.S))
	r.txPhase[0] = 1
	r.pendingCount = 1

	for phase := 1; phase <= cfg.MaxPhases && r.pendingCount > 0; phase++ {
		r.phase = int32(phase)
		for s := range r.bySlot {
			r.bySlot[s] = r.bySlot[s][:0]
		}
		// Collect this phase's transmitters (cancellation may still
		// strike before their slot). Under a fault plan, a sleeping
		// node's pending transmission defers to its next waking phase
		// (same slot); a node that dies first loses it.
		for i := 0; i < n; i++ {
			if r.txSlot[i] == noTx || int(r.txPhase[i]) > phase {
				continue
			}
			if plan != nil {
				up, ok := plan.NextUp(int32(i), int32(phase))
				if !ok {
					r.txSlot[i] = noTx
					continue
				}
				if int(up) != phase {
					r.txPhase[i] = up
					continue
				}
			}
			r.bySlot[r.txSlot[i]] = append(r.bySlot[r.txSlot[i]], int32(i))
		}
		phaseNew := 0
		for s := 0; s < cfg.S; s++ {
			r.slot = int32(s)
			// Drop transmissions cancelled by duplicates heard in
			// earlier slots, and (under a fault plan) transmissions
			// whose node died mid-phase of energy depletion.
			txs := r.bySlot[s][:0]
			for _, id := range r.bySlot[s] {
				if !r.cancelled[id] && plan.Up(id, r.phase) {
					txs = append(txs, id)
				}
				r.txSlot[id] = noTx
			}
			if len(txs) == 0 {
				continue
			}
			r.broadcasts += len(txs)

			if cfg.Tracer != nil {
				for _, id := range txs {
					r.record(trace.KindTx, id, -1)
				}
			}
			r.firstTo = r.firstTo[:0]
			r.firstFrom = r.firstFrom[:0]
			if plan != nil {
				r.resolver.ResolveSlotFaults(txs, r, r.deliverFn, r.collideFn, r.dropFn)
				// Charge transmission energy after the slot resolves:
				// the spend that crosses the cap still completes.
				for _, id := range txs {
					plan.Spend(id, r.energyCost)
				}
			} else {
				r.resolver.ResolveSlotTraced(txs, r.deliverFn, r.collideFn)
			}
			// Every transmission contributes to the success rate, the
			// zero-delivery ones included (Fig. 12's measured ratio).
			for _, id := range txs {
				if deg := dep.Degree(int(id)); deg > 0 {
					r.succSum += float64(r.deliveredBy[id]) / float64(deg)
				}
				r.succN++
				r.deliveredBy[id] = 0
			}

			for i, to := range r.firstTo {
				from := r.firstFrom[i]
				r.reached++
				phaseNew++
				r.firstPhase[to] = r.phase
				d := dep.Pos[to].Dist(dep.Pos[from])
				ctx := protocol.Ctx{Phase: r.phase, Degree: dep.Degree(int(to))}
				if r.state.OnFirstReceive(to, from, d, ctx, rng) {
					r.txSlot[to] = int32(rng.Intn(cfg.S))
					r.txPhase[to] = int32(phase + 1)
					r.pendingCount++
				}
			}
		}
		// Pending transmissions for this phase have all fired or been
		// dropped; recount what remains for the next phase.
		r.pendingCount = 0
		for i := 0; i < n; i++ {
			if r.txSlot[i] != noTx && !r.cancelled[i] {
				r.pendingCount++
			}
		}
		res.PhaseNew = append(res.PhaseNew, phaseNew)
		r.sample()
	}

	res.Reached = r.reached
	res.Broadcasts = r.broadcasts
	if r.succN > 0 {
		res.SuccessRate = r.succSum / float64(r.succN)
	}
	st := plan.Stats()
	res.Crashed, res.Depleted = st.Crashed, st.Depleted
	fillRingStats(res, dep, r.firstPhase)
	return res, nil
}

// fillRingStats resolves first-reception phases by ring, producing the
// simulated counterpart of the analytic n_j^i wavefront.
func fillRingStats(res *Result, dep *deploy.Deployment, firstPhase []int32) {
	p := int(math.Round(dep.FieldRadius / dep.R))
	if p < 1 {
		p = 1
	}
	res.RingReached = make([]int, p)
	res.RingNodes = make([]int, p)
	res.RingArrival = make([]float64, p)
	sum := make([]float64, p)
	cnt := make([]int, p)
	for i := range dep.Pos {
		j := dep.RingOf(i) - 1
		res.RingNodes[j]++
		if firstPhase[i] >= 0 {
			res.RingReached[j]++
			sum[j] += float64(firstPhase[i])
			cnt[j]++
		}
	}
	for j := 0; j < p; j++ {
		if cnt[j] > 0 {
			res.RingArrival[j] = sum[j] / float64(cnt[j])
		} else {
			res.RingArrival[j] = math.NaN()
		}
	}
}
