// Package sim is the network simulator used to validate the analytical
// framework — the role GloMoSim plays in the paper's §5, rebuilt on the
// repository's own deployment, channel, and protocol substrates.
//
// Executions follow the PB_CAM schedule of §4.2: time is organised in
// phases of S slots; the source transmits in phase 1; a node that first
// decodes the packet runs its protocol decision and, if positive,
// transmits once in a uniformly random slot of its next phase. The
// default engine assumes network-wide slot alignment (the assumption the
// paper makes for analysis); the asynchronous engine gives every node a
// random phase offset and resolves collisions in continuous time on a
// discrete-event kernel, exercising the paper's remark that the
// algorithm itself needs no synchronisation.
package sim

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"sensornet/internal/channel"
	"sensornet/internal/deploy"
	"sensornet/internal/engine"
	"sensornet/internal/faults"
	"sensornet/internal/metrics"
	"sensornet/internal/protocol"
	"sensornet/internal/trace"
)

// Config parameterises one simulation run.
type Config struct {
	// P, R, Rho, N describe the deployment (see deploy.Config).
	P   int
	R   float64
	Rho float64
	N   int
	// S is the number of slots per phase (paper: 3).
	S int
	// Model is the link-level communication model (default CAM).
	Model channel.Model
	// Protocol is the broadcast scheme (default Flooding).
	Protocol protocol.Protocol
	// Seed drives deployment sampling and every protocol coin flip.
	Seed int64
	// Async enables per-node random phase offsets with continuous-time
	// collision resolution.
	Async bool
	// MaxPhases caps the execution length (default 1000).
	MaxPhases int
	// Deployment, when non-nil, is used instead of sampling a fresh
	// one (the deployment's own parameters then take precedence).
	Deployment *deploy.Deployment
	// Faults, when non-nil and enabled, layers a deterministic fault
	// plan (crash-stop, duty cycling, energy depletion, link loss) on
	// top of the communication model. The plan's streams derive from
	// Seed via engine.DeriveSeed, so equal seeds yield byte-identical
	// fault timelines.
	Faults *faults.Config
	// Tracer, when non-nil, receives every channel event (see the
	// trace package). Tracing adds per-event overhead; leave nil in
	// parameter sweeps.
	Tracer trace.Tracer
}

func (c *Config) applyDefaults() {
	//lint:ignore floateq exact zero is the "unset" sentinel for config fields, not a computed value
	if c.R == 0 {
		c.R = 1
	}
	if c.MaxPhases == 0 {
		c.MaxPhases = 1000
	}
	if c.Protocol == nil {
		c.Protocol = protocol.Flooding{}
	}
}

// Validate reports whether the configuration is runnable.
func (c Config) Validate() error {
	if c.S < 1 {
		return errors.New("sim: S must be >= 1")
	}
	if c.Deployment == nil {
		dc := deploy.Config{P: c.P, R: c.R, Rho: c.Rho, N: c.N}
		if err := dc.Validate(); err != nil {
			return fmt.Errorf("sim: %w", err)
		}
	}
	if c.MaxPhases < 0 {
		return errors.New("sim: MaxPhases must be >= 0")
	}
	if c.Faults != nil {
		if err := c.Faults.Validate(); err != nil {
			return fmt.Errorf("sim: %w", err)
		}
	}
	return nil
}

// Result is the outcome of one simulation run.
type Result struct {
	// Timeline carries cumulative reachability and broadcast counts at
	// phase boundaries, in the shared metrics shape.
	Timeline metrics.Timeline
	// N is the node count, Reached the nodes holding the packet at
	// termination (source included), Broadcasts the transmissions
	// performed.
	N          int
	Reached    int
	Broadcasts int
	// Connected is the number of nodes reachable from the source in
	// the communication graph: the ceiling on Reached.
	Connected int
	// SuccessRate is the mean, over transmissions, of the fraction of
	// the transmitter's neighbours that decoded the packet (Fig. 12's
	// measured quantity). NaN-free: transmissions with no neighbours
	// count as zero-success.
	SuccessRate float64
	// PhaseNew[i] is the number of first receptions during phase i+1.
	PhaseNew []int
	// RingReached[j-1] counts the nodes of ring j holding the packet
	// at termination (the source counts towards ring 1); RingNodes is
	// the ring population. Together they resolve the broadcast
	// wavefront by ring, the quantity the analytic recursion predicts.
	RingReached []int
	RingNodes   []int
	// RingArrival[j-1] is the mean phase of first reception in ring j
	// (NaN for unreached rings).
	RingArrival []float64
	// Delivered counts successful packet receptions (duplicates
	// included); LostToCollision counts receptions destroyed by CAM
	// collisions (one per receiver per slot, matching
	// trace.KindCollision); LostToFault counts receptions lost to the
	// fault plan instead — down receivers and per-packet link loss, one
	// per (transmitter, receiver) pair.
	Delivered       int
	LostToCollision int
	LostToFault     int
	// Crashed counts the nodes the fault plan crash-stops within the
	// horizon; Depleted counts nodes killed by energy-budget depletion
	// during the run. Both are zero without a fault plan.
	Crashed  int
	Depleted int
}

// Run executes one simulation.
func Run(cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg.applyDefaults()
	//lint:ignore seedderive Config.Seed is the run's root seed; campaigns derive it per row via engine.DeriveSeed
	rng := rand.New(rand.NewSource(cfg.Seed))
	dep := cfg.Deployment
	if dep == nil {
		var err error
		dep, err = deploy.Generate(deploy.Config{
			P: cfg.P, R: cfg.R, Rho: cfg.Rho, N: cfg.N,
			WithSensing: cfg.Model == channel.CAMCarrierSense,
		}, rng)
		if err != nil {
			return nil, err
		}
	}
	var plan *faults.Plan
	if cfg.Faults != nil && cfg.Faults.Enabled() {
		p, err := faults.New(*cfg.Faults, dep.N(), cfg.MaxPhases,
			engine.DeriveSeed(cfg.Seed, "sim", "faults"))
		if err != nil {
			return nil, err
		}
		plan = p
	}
	if cfg.Async {
		return runAsync(cfg, dep, rng, plan)
	}
	return runSync(cfg, dep, rng, plan)
}

// planSlotFaults adapts a fault plan to the channel's per-slot filter;
// phase is the slot's enclosing time phase.
type planSlotFaults struct {
	plan  *faults.Plan
	phase int32
}

func (f planSlotFaults) TxUp(u int32) bool              { return f.plan.Up(u, f.phase) }
func (f planSlotFaults) RxUp(v int32) bool              { return f.plan.Up(v, f.phase) }
func (f planSlotFaults) DropPacket(from, to int32) bool { return f.plan.Drop() }

// runSync executes the slot-aligned engine.
func runSync(cfg Config, dep *deploy.Deployment, rng *rand.Rand, plan *faults.Plan) (*Result, error) {
	resolver, err := channel.NewResolver(cfg.Model, dep)
	if err != nil {
		return nil, err
	}
	n := dep.N()
	state := cfg.Protocol.NewState(n)
	energyCost := channel.DefaultCosts(cfg.Model).Energy

	const noTx = -1
	txSlot := make([]int32, n) // slot of the pending transmission
	txPhase := make([]int32, n)
	hasPacket := make([]bool, n)
	cancelled := make([]bool, n)
	for i := range txSlot {
		txSlot[i] = noTx
	}

	firstPhase := make([]int32, n)
	for i := range firstPhase {
		firstPhase[i] = -1
	}
	firstPhase[0] = 0

	res := &Result{N: n, Connected: dep.ReachableFromSource()}
	tl := &res.Timeline
	tl.N = float64(n)
	sample := func(phase int, reached, broadcasts int) {
		tl.Phases = append(tl.Phases, float64(phase))
		tl.CumReach = append(tl.CumReach, float64(reached)/float64(n))
		tl.CumBroadcasts = append(tl.CumBroadcasts, float64(broadcasts))
	}

	// Phase 0 anchor: only the source holds the packet.
	hasPacket[0] = true
	reached, broadcasts := 1, 0
	sample(0, reached, broadcasts)

	// The source transmits in a random slot of phase 1.
	txSlot[0] = int32(rng.Intn(cfg.S))
	txPhase[0] = 1
	pendingCount := 1

	var succSum float64
	var succN int
	deliveredBy := make([]int32, n) // per-slot scratch, reset after use
	bySlot := make([][]int32, cfg.S)

	for phase := 1; phase <= cfg.MaxPhases && pendingCount > 0; phase++ {
		for s := range bySlot {
			bySlot[s] = bySlot[s][:0]
		}
		// Collect this phase's transmitters (cancellation may still
		// strike before their slot). Under a fault plan, a sleeping
		// node's pending transmission defers to its next waking phase
		// (same slot); a node that dies first loses it.
		for i := 0; i < n; i++ {
			if txSlot[i] == noTx || int(txPhase[i]) > phase {
				continue
			}
			if plan != nil {
				up, ok := plan.NextUp(int32(i), int32(phase))
				if !ok {
					txSlot[i] = noTx
					continue
				}
				if int(up) != phase {
					txPhase[i] = up
					continue
				}
			}
			bySlot[txSlot[i]] = append(bySlot[txSlot[i]], int32(i))
		}
		phaseNew := 0
		for s := 0; s < cfg.S; s++ {
			// Drop transmissions cancelled by duplicates heard in
			// earlier slots, and (under a fault plan) transmissions
			// whose node died mid-phase of energy depletion.
			txs := bySlot[s][:0]
			for _, id := range bySlot[s] {
				if !cancelled[id] && plan.Up(id, int32(phase)) {
					txs = append(txs, id)
				}
				txSlot[id] = noTx
			}
			if len(txs) == 0 {
				continue
			}
			broadcasts += len(txs)

			record := func(k trace.Kind, node, other int32) {
				if cfg.Tracer != nil {
					cfg.Tracer.Record(trace.Event{
						Kind: k, Phase: int32(phase), Slot: int32(s),
						Node: node, Other: other,
					})
				}
			}
			if cfg.Tracer != nil {
				for _, id := range txs {
					record(trace.KindTx, id, -1)
				}
			}
			type rx struct {
				to, from int32
			}
			var firstRx []rx
			collided := func(to, heard int32) {
				res.LostToCollision++
				record(trace.KindCollision, to, heard)
			}
			deliver := func(from, to int32) {
				res.Delivered++
				deliveredBy[from]++
				record(trace.KindDeliver, to, from)
				if !hasPacket[to] {
					firstRx = append(firstRx, rx{to, from})
					hasPacket[to] = true
					record(trace.KindFirstReceive, to, from)
				} else if txSlot[to] != noTx && !cancelled[to] {
					d := dep.Pos[to].Dist(dep.Pos[from])
					ctx := protocol.Ctx{Phase: int32(phase), Degree: dep.Degree(int(to))}
					if !state.OnDuplicate(to, from, d, ctx) {
						cancelled[to] = true
						pendingCount--
						record(trace.KindCancel, to, from)
					}
				}
			}
			if plan != nil {
				fm := planSlotFaults{plan, int32(phase)}
				resolver.ResolveSlotFaults(txs, fm, deliver, collided, func(from, to int32) {
					res.LostToFault++
					record(trace.KindDrop, to, from)
				})
				// Charge transmission energy after the slot resolves:
				// the spend that crosses the cap still completes.
				for _, id := range txs {
					plan.Spend(id, energyCost)
				}
			} else {
				resolver.ResolveSlotTraced(txs, deliver, collided)
			}
			// Every transmission contributes to the success rate, the
			// zero-delivery ones included (Fig. 12's measured ratio).
			for _, id := range txs {
				if deg := dep.Degree(int(id)); deg > 0 {
					succSum += float64(deliveredBy[id]) / float64(deg)
				}
				succN++
				deliveredBy[id] = 0
			}

			for _, r := range firstRx {
				reached++
				phaseNew++
				firstPhase[r.to] = int32(phase)
				d := dep.Pos[r.to].Dist(dep.Pos[r.from])
				ctx := protocol.Ctx{Phase: int32(phase), Degree: dep.Degree(int(r.to))}
				if state.OnFirstReceive(r.to, r.from, d, ctx, rng) {
					txSlot[r.to] = int32(rng.Intn(cfg.S))
					txPhase[r.to] = int32(phase + 1)
					pendingCount++
				}
			}
		}
		// Pending transmissions for this phase have all fired or been
		// dropped; recount what remains for the next phase.
		pendingCount = 0
		for i := 0; i < n; i++ {
			if txSlot[i] != noTx && !cancelled[i] {
				pendingCount++
			}
		}
		res.PhaseNew = append(res.PhaseNew, phaseNew)
		sample(phase, reached, broadcasts)
	}

	res.Reached = reached
	res.Broadcasts = broadcasts
	if succN > 0 {
		res.SuccessRate = succSum / float64(succN)
	}
	st := plan.Stats()
	res.Crashed, res.Depleted = st.Crashed, st.Depleted
	fillRingStats(res, dep, firstPhase)
	return res, nil
}

// fillRingStats resolves first-reception phases by ring, producing the
// simulated counterpart of the analytic n_j^i wavefront.
func fillRingStats(res *Result, dep *deploy.Deployment, firstPhase []int32) {
	p := int(math.Round(dep.FieldRadius / dep.R))
	if p < 1 {
		p = 1
	}
	res.RingReached = make([]int, p)
	res.RingNodes = make([]int, p)
	res.RingArrival = make([]float64, p)
	sum := make([]float64, p)
	cnt := make([]int, p)
	for i := range dep.Pos {
		j := dep.RingOf(i) - 1
		res.RingNodes[j]++
		if firstPhase[i] >= 0 {
			res.RingReached[j]++
			sum[j] += float64(firstPhase[i])
			cnt[j]++
		}
	}
	for j := 0; j < p; j++ {
		if cnt[j] > 0 {
			res.RingArrival[j] = sum[j] / float64(cnt[j])
		} else {
			res.RingArrival[j] = math.NaN()
		}
	}
}
