package sim

import (
	"math"
	"math/rand"
	"testing"

	"sensornet/internal/channel"
	"sensornet/internal/deploy"
	"sensornet/internal/protocol"
)

func paperCfg(rho, p float64, seed int64) Config {
	return Config{
		P: 5, S: 3, Rho: rho,
		Model:    channel.CAM,
		Protocol: protocol.Probability{P: p},
		Seed:     seed,
	}
}

func mustRun(t *testing.T, cfg Config) *Result {
	t.Helper()
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	bad := []Config{
		{S: 0, P: 5, Rho: 20},
		{S: 3, P: 0, Rho: 20},
		{S: 3, P: 5, Rho: -1},
		{S: 3, P: 5, Rho: 20, MaxPhases: -1},
	}
	for i, cfg := range bad {
		if _, err := Run(cfg); err == nil {
			t.Errorf("case %d: expected error for %+v", i, cfg)
		}
	}
}

func TestTimelineValidAndConsistent(t *testing.T) {
	res := mustRun(t, paperCfg(40, 0.3, 1))
	tl := res.Timeline
	if !tl.Valid() {
		t.Fatalf("invalid timeline %+v", tl)
	}
	if got := tl.FinalReachability(); math.Abs(got-float64(res.Reached)/float64(res.N)) > 1e-9 {
		t.Fatalf("timeline reach %v vs counted %v", got, float64(res.Reached)/float64(res.N))
	}
	if got := tl.TotalBroadcasts(); got != float64(res.Broadcasts) {
		t.Fatalf("timeline broadcasts %v vs counted %d", got, res.Broadcasts)
	}
}

func TestDeterministicForSeed(t *testing.T) {
	a := mustRun(t, paperCfg(40, 0.3, 7))
	b := mustRun(t, paperCfg(40, 0.3, 7))
	if a.Reached != b.Reached || a.Broadcasts != b.Broadcasts {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
	c := mustRun(t, paperCfg(40, 0.3, 8))
	if a.Reached == c.Reached && a.Broadcasts == c.Broadcasts && a.SuccessRate == c.SuccessRate {
		t.Fatal("different seeds suspiciously identical")
	}
}

func TestReachedNeverExceedsConnected(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		res := mustRun(t, paperCfg(30, 1, seed))
		if res.Reached > res.Connected {
			t.Fatalf("reached %d > connected %d", res.Reached, res.Connected)
		}
	}
}

func TestZeroProbabilityOnlySourceBroadcasts(t *testing.T) {
	res := mustRun(t, paperCfg(40, 0, 3))
	if res.Broadcasts != 1 {
		t.Fatalf("broadcasts = %d, want 1", res.Broadcasts)
	}
	// Everyone in range of the source receives its lone broadcast.
	if res.Reached < 2 {
		t.Fatalf("reached = %d, expected the source's neighbours", res.Reached)
	}
}

func TestFloodingCFMReachesWholeComponent(t *testing.T) {
	cfg := paperCfg(30, 1, 4)
	cfg.Model = channel.CFM
	cfg.Protocol = protocol.Flooding{}
	res := mustRun(t, cfg)
	if res.Reached != res.Connected {
		t.Fatalf("CFM flooding reached %d of %d connected", res.Reached, res.Connected)
	}
	// Every reached node broadcasts exactly once under flooding.
	if res.Broadcasts != res.Reached {
		t.Fatalf("broadcasts %d != reached %d", res.Broadcasts, res.Reached)
	}
}

func TestCFMFloodingLatencyEqualsHopDepth(t *testing.T) {
	// Under CFM flooding a node receives in phase = its BFS hop
	// distance from the source, so the latency to full component
	// coverage equals the component's eccentricity (O(P·r) in the
	// paper's terms).
	dep, err := deploy.Generate(deploy.Config{P: 5, Rho: 40}, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	cfg := paperCfg(40, 1, 5)
	cfg.Model = channel.CFM
	cfg.Protocol = protocol.Flooding{}
	cfg.Deployment = dep
	res := mustRun(t, cfg)

	// BFS depth of the connected component.
	depth := make([]int, dep.N())
	for i := range depth {
		depth[i] = -1
	}
	depth[0] = 0
	queue := []int32{0}
	maxDepth := 0
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range dep.Neighbors[u] {
			if depth[v] < 0 {
				depth[v] = depth[u] + 1
				if depth[v] > maxDepth {
					maxDepth = depth[v]
				}
				queue = append(queue, v)
			}
		}
	}
	frac := float64(res.Reached) / float64(res.N)
	lat, ok := res.Timeline.LatencyToReach(frac)
	if !ok {
		t.Fatal("final reachability must be crossed")
	}
	if math.Abs(lat-float64(maxDepth)) > 1e-9 {
		t.Fatalf("CFM flooding latency %v, want BFS eccentricity %d", lat, maxDepth)
	}
}

func TestCAMFloodingLosesToCFMAtHighDensity(t *testing.T) {
	cfm := paperCfg(100, 1, 6)
	cfm.Model = channel.CFM
	cfm.Protocol = protocol.Flooding{}
	cam := paperCfg(100, 1, 6)
	cam.Protocol = protocol.Flooding{}
	a := mustRun(t, cfm)
	b := mustRun(t, cam)
	ra := a.Timeline.ReachabilityAtPhase(5)
	rb := b.Timeline.ReachabilityAtPhase(5)
	if rb >= ra {
		t.Fatalf("CAM flooding (%v) should trail CFM (%v) at rho=100", rb, ra)
	}
	if rb > 0.8 {
		t.Fatalf("CAM flooding reach@5 = %v, expected collision losses", rb)
	}
}

func TestBellCurveInProbability(t *testing.T) {
	// Fig. 8: at high density, moderate p beats both extremes within
	// 5 phases. Average a few seeds to de-noise.
	reach := func(p float64) float64 {
		sum := 0.0
		for seed := int64(0); seed < 4; seed++ {
			sum += mustRun(t, paperCfg(100, p, seed)).Timeline.ReachabilityAtPhase(5)
		}
		return sum / 4
	}
	low, mid, flood := reach(0.02), reach(0.15), reach(1)
	if !(mid > low && mid > flood) {
		t.Fatalf("no bell curve: low %v, mid %v, flood %v", low, mid, flood)
	}
}

func TestSuccessRateWithinUnitInterval(t *testing.T) {
	res := mustRun(t, paperCfg(60, 1, 9))
	if res.SuccessRate < 0 || res.SuccessRate > 1 {
		t.Fatalf("success rate %v outside [0,1]", res.SuccessRate)
	}
	if res.SuccessRate == 0 {
		t.Fatal("flooding run should have some successful deliveries")
	}
}

func TestSuccessRateFallsWithDensity(t *testing.T) {
	rate := func(rho float64) float64 {
		sum := 0.0
		for seed := int64(0); seed < 3; seed++ {
			cfg := paperCfg(rho, 1, seed)
			cfg.Protocol = protocol.Flooding{}
			sum += mustRun(t, cfg).SuccessRate
		}
		return sum / 3
	}
	if !(rate(120) < rate(30)) {
		t.Fatalf("success rate should fall with density: %v vs %v", rate(120), rate(30))
	}
}

func TestCounterProtocolReducesBroadcasts(t *testing.T) {
	flood := paperCfg(60, 1, 10)
	flood.Protocol = protocol.Flooding{}
	counter := paperCfg(60, 1, 10)
	counter.Protocol = protocol.Counter{Threshold: 3}
	a := mustRun(t, flood)
	b := mustRun(t, counter)
	if b.Broadcasts >= a.Broadcasts {
		t.Fatalf("counter scheme should suppress: %d vs flooding %d", b.Broadcasts, a.Broadcasts)
	}
}

func TestDistanceProtocolReducesBroadcasts(t *testing.T) {
	flood := paperCfg(60, 1, 11)
	flood.Protocol = protocol.Flooding{}
	dist := paperCfg(60, 1, 11)
	dist.Protocol = protocol.Distance{MinDist: 0.5}
	a := mustRun(t, flood)
	b := mustRun(t, dist)
	if b.Broadcasts >= a.Broadcasts {
		t.Fatalf("distance scheme should suppress: %d vs flooding %d", b.Broadcasts, a.Broadcasts)
	}
}

func TestCarrierSenseReducesReach(t *testing.T) {
	plain := paperCfg(80, 0.3, 12)
	cs := paperCfg(80, 0.3, 12)
	cs.Model = channel.CAMCarrierSense
	a := mustRun(t, plain)
	b := mustRun(t, cs)
	if b.Timeline.ReachabilityAtPhase(5) > a.Timeline.ReachabilityAtPhase(5)+0.05 {
		t.Fatalf("carrier sense should not increase reach: %v vs %v",
			b.Timeline.ReachabilityAtPhase(5), a.Timeline.ReachabilityAtPhase(5))
	}
}

func TestMaxPhasesCap(t *testing.T) {
	cfg := paperCfg(60, 0.1, 13)
	cfg.MaxPhases = 2
	res := mustRun(t, cfg)
	if res.Timeline.Duration() > 2 {
		t.Fatalf("duration %v exceeds cap 2", res.Timeline.Duration())
	}
}

func TestPhaseNewSumsToReachedMinusSource(t *testing.T) {
	res := mustRun(t, paperCfg(50, 0.4, 14))
	sum := 0
	for _, v := range res.PhaseNew {
		sum += v
	}
	if sum != res.Reached-1 {
		t.Fatalf("phase receipts %d != reached-1 %d", sum, res.Reached-1)
	}
}

func BenchmarkRunSyncRho60(b *testing.B) {
	cfg := paperCfg(60, 0.2, 1)
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i)
		if _, err := Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunSyncRho140Flooding(b *testing.B) {
	cfg := paperCfg(140, 1, 1)
	cfg.Protocol = protocol.Flooding{}
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i)
		if _, err := Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
