package sim

import (
	"math/rand"
	"strings"
	"testing"

	"sensornet/internal/channel"
	"sensornet/internal/deploy"
)

func TestSINRRunSyncSpreads(t *testing.T) {
	res, err := Run(Config{P: 3, Rho: 20, S: 3, Model: channel.ModelSINR, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Reached <= 1 || res.Broadcasts == 0 || res.Delivered == 0 {
		t.Fatalf("SINR flooding did not spread: reached=%d broadcasts=%d delivered=%d",
			res.Reached, res.Broadcasts, res.Delivered)
	}
	if res.Reached > res.Connected {
		t.Fatalf("reached %d exceeds connected component %d", res.Reached, res.Connected)
	}
}

func TestSINRRunAsyncSpreads(t *testing.T) {
	res, err := Run(Config{P: 3, Rho: 20, S: 3, Model: channel.ModelSINR, Seed: 5, Async: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Reached <= 1 || res.Broadcasts == 0 || res.Delivered == 0 {
		t.Fatalf("async SINR flooding did not spread: reached=%d broadcasts=%d delivered=%d",
			res.Reached, res.Broadcasts, res.Delivered)
	}
}

func TestSINRRunDeterministic(t *testing.T) {
	for _, async := range []bool{false, true} {
		cfg := Config{P: 3, Rho: 20, S: 3, Model: channel.ModelSINR, Seed: 11, Async: async}
		a, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if a.Reached != b.Reached || a.Broadcasts != b.Broadcasts ||
			a.Delivered != b.Delivered || a.LostToCollision != b.LostToCollision {
			t.Fatalf("async=%v: same seed diverged: %+v vs %+v", async, a, b)
		}
	}
}

// TestSINRRunRequiresGainTables pins both engines' guard against a
// caller-supplied deployment built without the precomputed gains.
func TestSINRRunRequiresGainTables(t *testing.T) {
	dep, err := deploy.Generate(deploy.Config{P: 3, Rho: 15, WithSensing: true},
		rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	for _, async := range []bool{false, true} {
		_, err := Run(Config{S: 3, Model: channel.ModelSINR, Seed: 1, Async: async, Deployment: dep})
		if err == nil {
			t.Fatalf("async=%v: deployment without gain tables should error", async)
		}
		if !strings.Contains(err.Error(), "gain") {
			t.Fatalf("async=%v: unhelpful error %q", async, err)
		}
	}
}

// TestSINRMatchesCAMForLoneTransmitters pins the parameter-defaults
// contract: with β·N₀ < 1 a lone transmitter decodes at every in-range
// receiver, so on a deployment sparse enough that transmissions never
// overlap, SINR and CAM runs are observationally identical.
func TestSINRMatchesCAMForLoneTransmitters(t *testing.T) {
	p := channel.DefaultSINRParams()
	if p.Beta*p.N0 >= 1 {
		t.Fatalf("default β·N₀ = %v must stay < 1 so lone transmitters decode at range edge", p.Beta*p.N0)
	}
	// Two nodes: the source and one neighbour. One transmission, no
	// interference — both models must deliver exactly once.
	mk := func(alpha float64) *deploy.Deployment {
		d, err := deploy.Generate(deploy.Config{N: 2, P: 1, Rho: 2, WithSensing: true, GainAlpha: alpha},
			rand.New(rand.NewSource(6)))
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	cam, err := Run(Config{S: 3, Model: channel.CAMCarrierSense, Seed: 2, Deployment: mk(0)})
	if err != nil {
		t.Fatal(err)
	}
	sinr, err := Run(Config{S: 3, Model: channel.ModelSINR, Seed: 2, Deployment: mk(p.Alpha)})
	if err != nil {
		t.Fatal(err)
	}
	if cam.Reached != sinr.Reached || cam.Delivered != sinr.Delivered {
		t.Fatalf("lone-transmitter runs diverged: CAM %+v, SINR %+v", cam, sinr)
	}
}

// TestSINRReplicationDeploymentsCarryGains pins that the CRN deployment
// pre-sampling path builds the same gain tables Run would.
func TestSINRReplicationDeploymentsCarryGains(t *testing.T) {
	cfg := Config{P: 3, Rho: 15, S: 3, Model: channel.ModelSINR, Seed: 7}
	deps, err := ReplicationDeployments(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range deps {
		if d.Gains == nil || d.SensingGains == nil {
			t.Fatalf("replication %d deployment lacks gain tables", i)
		}
		if d.GainAlpha != channel.DefaultSINRParams().Alpha {
			t.Fatalf("replication %d GainAlpha = %v", i, d.GainAlpha)
		}
	}
	// And the runs accept them.
	cfg.Deployment = deps[0]
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
}

// TestSINRAsyncLoneTransmittersMatchCAM is the async counterpart of the
// lone-transmitter equivalence: on a two-node field transmissions never
// overlap, so the continuous-time SINR engine must hand over the packet
// exactly like the CAM engine does.
func TestSINRAsyncLoneTransmittersMatchCAM(t *testing.T) {
	mk := func(alpha float64) *deploy.Deployment {
		d, err := deploy.Generate(deploy.Config{N: 2, P: 1, Rho: 2, WithSensing: true, GainAlpha: alpha},
			rand.New(rand.NewSource(6)))
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	cam, err := Run(Config{S: 3, Model: channel.CAMCarrierSense, Seed: 2, Async: true, Deployment: mk(0)})
	if err != nil {
		t.Fatal(err)
	}
	sinr, err := Run(Config{S: 3, Model: channel.ModelSINR, Seed: 2, Async: true,
		Deployment: mk(channel.DefaultSINRParams().Alpha)})
	if err != nil {
		t.Fatal(err)
	}
	if cam.Reached != sinr.Reached || cam.Delivered != sinr.Delivered ||
		cam.Broadcasts != sinr.Broadcasts {
		t.Fatalf("async lone-transmitter runs diverged: CAM %+v, SINR %+v", cam, sinr)
	}
}
