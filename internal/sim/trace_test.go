package sim

import (
	"testing"

	"sensornet/internal/channel"
	"sensornet/internal/protocol"
	"sensornet/internal/trace"
)

func TestTracerCountsMatchResult(t *testing.T) {
	var col trace.Collector
	cfg := paperCfg(40, 0.3, 21)
	cfg.Tracer = &col
	res := mustRun(t, cfg)

	tot := col.Totals()
	if tot.Transmissions != res.Broadcasts {
		t.Fatalf("traced tx %d != result broadcasts %d", tot.Transmissions, res.Broadcasts)
	}
	if tot.FirstReceives != res.Reached-1 {
		t.Fatalf("traced first receives %d != reached-1 %d", tot.FirstReceives, res.Reached-1)
	}
	if tot.Deliveries < tot.FirstReceives {
		t.Fatalf("deliveries %d < first receives %d", tot.Deliveries, tot.FirstReceives)
	}
}

func TestTracerSeesCollisionsUnderFlooding(t *testing.T) {
	var col trace.Collector
	cfg := paperCfg(80, 1, 22)
	cfg.Protocol = protocol.Flooding{}
	cfg.Tracer = &col
	mustRun(t, cfg)
	if col.Totals().Collisions == 0 {
		t.Fatal("dense flooding must produce collisions")
	}
	if r := col.CollisionRate(); r <= 0 || r >= 1 {
		t.Fatalf("collision rate %v implausible", r)
	}
}

func TestTracerCFMNeverCollides(t *testing.T) {
	var col trace.Collector
	cfg := paperCfg(60, 1, 23)
	cfg.Model = channel.CFM
	cfg.Protocol = protocol.Flooding{}
	cfg.Tracer = &col
	mustRun(t, cfg)
	if col.Totals().Collisions != 0 {
		t.Fatalf("CFM recorded %d collisions", col.Totals().Collisions)
	}
}

func TestTracerCollisionRateGrowsWithP(t *testing.T) {
	rate := func(p float64) float64 {
		var col trace.Collector
		cfg := paperCfg(80, p, 24)
		cfg.Tracer = &col
		mustRun(t, cfg)
		return col.CollisionRate()
	}
	lo, hi := rate(0.05), rate(1)
	if hi <= lo {
		t.Fatalf("collision rate should grow with p: %v vs %v", lo, hi)
	}
}

func TestTracerRecordsCancels(t *testing.T) {
	var col trace.Collector
	cfg := paperCfg(60, 1, 25)
	cfg.Protocol = protocol.Counter{Threshold: 2}
	cfg.Tracer = &col
	mustRun(t, cfg)
	if col.Totals().Cancels == 0 {
		t.Fatal("counter suppression should record cancels")
	}
}

func TestTracerAsyncEngine(t *testing.T) {
	var col trace.Collector
	cfg := asyncCfg(60, 0.3, 26)
	cfg.Tracer = &col
	res := mustRun(t, cfg)
	tot := col.Totals()
	if tot.Transmissions != res.Broadcasts {
		t.Fatalf("async traced tx %d != broadcasts %d", tot.Transmissions, res.Broadcasts)
	}
	if tot.FirstReceives != res.Reached-1 {
		t.Fatalf("async first receives %d != reached-1 %d", tot.FirstReceives, res.Reached-1)
	}
}

func TestTracerNilByDefaultIsFree(t *testing.T) {
	// Just assert the default path still works (no tracer).
	res := mustRun(t, paperCfg(30, 0.3, 27))
	if res.Broadcasts == 0 {
		t.Fatal("run with nil tracer broken")
	}
}
