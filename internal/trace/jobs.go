package trace

import (
	"sync"
	"time"
)

// Span records one unit of executor work: a job attempt (or cache hit)
// with its placement on a worker and its wall-clock extent. The
// execution engine (internal/engine) records spans here so that job
// timing and worker utilization are observable through the same package
// that makes channel activity observable.
type Span struct {
	// Name identifies the job the span belongs to.
	Name string
	// Worker is the index of the pool worker that ran the span.
	Worker int
	// Attempt is 1 for the first execution, 2+ for retries, 0 for a
	// cache hit (no execution happened).
	Attempt int
	// Start is the span's offset from the log's epoch.
	Start time.Duration
	// Duration is the span's wall-clock extent.
	Duration time.Duration
	// Cached marks a span satisfied from the result cache.
	Cached bool
	// Failed marks a span whose attempt returned an error.
	Failed bool
}

// SpanLog is a concurrency-safe collector of Spans. The zero value is
// ready to use; its epoch is fixed on the first Record call.
type SpanLog struct {
	mu    sync.Mutex
	epoch time.Time
	spans []Span
}

// Epoch returns the log's time origin, fixing it to now when the log is
// still empty.
func (l *SpanLog) Epoch() time.Time {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.epochLocked()
}

func (l *SpanLog) epochLocked() time.Time {
	if l.epoch.IsZero() {
		l.epoch = time.Now()
	}
	return l.epoch
}

// Record appends one span.
func (l *SpanLog) Record(s Span) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.epochLocked()
	l.spans = append(l.spans, s)
}

// Spans returns a copy of the recorded spans in record order.
func (l *SpanLog) Spans() []Span {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Span, len(l.spans))
	copy(out, l.spans)
	return out
}

// Len returns the number of recorded spans.
func (l *SpanLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.spans)
}

// Busy sums the wall-clock extents of all executed (non-cached) spans:
// the total time pool workers spent running jobs.
func (l *SpanLog) Busy() time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	var busy time.Duration
	for _, s := range l.spans {
		if !s.Cached {
			busy += s.Duration
		}
	}
	return busy
}

// Utilization returns Busy divided by the capacity workers×wall: the
// fraction of the pool's available compute that executed jobs. It
// returns 0 when the capacity is not positive.
func (l *SpanLog) Utilization(workers int, wall time.Duration) float64 {
	if workers <= 0 || wall <= 0 {
		return 0
	}
	return float64(l.Busy()) / (float64(workers) * float64(wall))
}
