package trace

import (
	"sync"
	"testing"
	"time"
)

func TestSpanLogRecordAndTotals(t *testing.T) {
	var l SpanLog
	l.Record(Span{Name: "a", Worker: 0, Attempt: 1, Duration: 10 * time.Millisecond})
	l.Record(Span{Name: "b", Worker: 1, Attempt: 1, Duration: 30 * time.Millisecond})
	l.Record(Span{Name: "a", Worker: 0, Cached: true})
	if l.Len() != 3 {
		t.Fatalf("len = %d", l.Len())
	}
	if got := l.Busy(); got != 40*time.Millisecond {
		t.Fatalf("busy = %v, cached spans must not count", got)
	}
	spans := l.Spans()
	if len(spans) != 3 || spans[1].Name != "b" {
		t.Fatalf("spans %+v", spans)
	}
	// The returned slice is a copy.
	spans[0].Name = "mutated"
	if l.Spans()[0].Name != "a" {
		t.Fatal("Spans() exposed internal state")
	}
}

func TestSpanLogUtilization(t *testing.T) {
	var l SpanLog
	l.Record(Span{Name: "a", Duration: 50 * time.Millisecond})
	l.Record(Span{Name: "b", Duration: 50 * time.Millisecond})
	if u := l.Utilization(2, 100*time.Millisecond); u != 0.5 {
		t.Fatalf("utilization = %v, want 0.5", u)
	}
	if u := l.Utilization(0, time.Second); u != 0 {
		t.Fatalf("zero workers should yield 0, got %v", u)
	}
	if u := l.Utilization(2, 0); u != 0 {
		t.Fatalf("zero wall should yield 0, got %v", u)
	}
}

func TestSpanLogEpochStable(t *testing.T) {
	var l SpanLog
	e1 := l.Epoch()
	l.Record(Span{Name: "x"})
	if e2 := l.Epoch(); !e1.Equal(e2) {
		t.Fatalf("epoch moved: %v vs %v", e1, e2)
	}
}

func TestSpanLogConcurrentRecord(t *testing.T) {
	var l SpanLog
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				l.Record(Span{Name: "j", Worker: w, Attempt: 1,
					Duration: time.Microsecond})
			}
		}(w)
	}
	wg.Wait()
	if l.Len() != 800 {
		t.Fatalf("len = %d, want 800", l.Len())
	}
	if l.Busy() != 800*time.Microsecond {
		t.Fatalf("busy = %v", l.Busy())
	}
}
