// Package trace records what happens on the channel during a
// simulation run: transmissions, successful deliveries, collision
// losses, and fault losses (down receivers, lossy links). The collision profile is the mechanism behind every headline
// result in the paper — reachability bells over p because the delivery
// rate collapses once concurrent transmissions saturate the slots — and
// this package makes that mechanism measurable instead of inferred.
package trace

import "fmt"

// Kind labels a channel event.
type Kind uint8

const (
	// KindTx is one packet transmission (Node = transmitter).
	KindTx Kind = iota
	// KindDeliver is a successful reception (Node = receiver, Other =
	// transmitter).
	KindDeliver
	// KindCollision is a destroyed reception opportunity (Node =
	// receiver, Other = number of simultaneous transmitters heard).
	KindCollision
	// KindFirstReceive marks a node's first successful reception of
	// the broadcast payload (Node = receiver, Other = transmitter).
	KindFirstReceive
	// KindCancel marks a suppressed pending rebroadcast (Node = the
	// suppressed node, Other = the transmitter that caused it).
	KindCancel
	// KindDrop is a reception lost to the fault plan instead of a
	// collision: a down receiver or an independently lost packet
	// (Node = receiver, Other = transmitter).
	KindDrop
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindTx:
		return "tx"
	case KindDeliver:
		return "deliver"
	case KindCollision:
		return "collision"
	case KindFirstReceive:
		return "first-receive"
	case KindCancel:
		return "cancel"
	case KindDrop:
		return "drop"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Event is one channel event, stamped with its phase and slot.
type Event struct {
	Kind  Kind
	Phase int32
	Slot  int32
	Node  int32
	Other int32
}

// Tracer consumes simulation events. Implementations must be cheap:
// the simulator calls Record inside its hot loop.
type Tracer interface {
	Record(Event)
}

// PhaseStats aggregates one phase's channel activity.
type PhaseStats struct {
	Transmissions int
	Deliveries    int
	Collisions    int // destroyed reception opportunities
	FirstReceives int
	Cancels       int
	Drops         int // receptions lost to faults (down receiver, link loss)
}

// Collector is a bounded in-memory Tracer that keeps per-phase
// statistics and (up to Cap) raw events. The zero value collects
// statistics only.
type Collector struct {
	// Cap bounds the retained raw events; 0 retains none.
	Cap int

	events  []Event
	dropped int
	phases  []PhaseStats
}

var _ Tracer = (*Collector)(nil)

// Record implements Tracer.
func (c *Collector) Record(e Event) {
	for int(e.Phase) >= len(c.phases) {
		c.phases = append(c.phases, PhaseStats{})
	}
	ps := &c.phases[e.Phase]
	switch e.Kind {
	case KindTx:
		ps.Transmissions++
	case KindDeliver:
		ps.Deliveries++
	case KindCollision:
		ps.Collisions++
	case KindFirstReceive:
		ps.FirstReceives++
	case KindCancel:
		ps.Cancels++
	case KindDrop:
		ps.Drops++
	}
	if len(c.events) < c.Cap {
		c.events = append(c.events, e)
	} else if c.Cap > 0 {
		c.dropped++
	}
}

// Events returns the retained raw events.
func (c *Collector) Events() []Event { return c.events }

// Dropped returns how many events exceeded Cap.
func (c *Collector) Dropped() int { return c.dropped }

// Phases returns the per-phase statistics (index = phase number).
func (c *Collector) Phases() []PhaseStats { return c.phases }

// Totals sums the per-phase statistics.
func (c *Collector) Totals() PhaseStats {
	var t PhaseStats
	for _, p := range c.phases {
		t.Transmissions += p.Transmissions
		t.Deliveries += p.Deliveries
		t.Collisions += p.Collisions
		t.FirstReceives += p.FirstReceives
		t.Cancels += p.Cancels
		t.Drops += p.Drops
	}
	return t
}

// CollisionRate returns the fraction of reception opportunities lost to
// collisions: Collisions / (Collisions + Deliveries). It returns 0 when
// the channel was silent.
func (c *Collector) CollisionRate() float64 {
	t := c.Totals()
	den := t.Collisions + t.Deliveries
	if den == 0 {
		return 0
	}
	return float64(t.Collisions) / float64(den)
}
