package trace

import "testing"

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindTx: "tx", KindDeliver: "deliver", KindCollision: "collision",
		KindFirstReceive: "first-receive", KindCancel: "cancel",
		Kind(99): "kind(99)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestCollectorStats(t *testing.T) {
	var c Collector
	c.Record(Event{Kind: KindTx, Phase: 1, Node: 3})
	c.Record(Event{Kind: KindDeliver, Phase: 1, Node: 4, Other: 3})
	c.Record(Event{Kind: KindCollision, Phase: 2, Node: 5, Other: 2})
	c.Record(Event{Kind: KindFirstReceive, Phase: 1, Node: 4, Other: 3})
	c.Record(Event{Kind: KindCancel, Phase: 2, Node: 6, Other: 3})

	phases := c.Phases()
	if len(phases) != 3 {
		t.Fatalf("phases = %d, want 3 (0..2)", len(phases))
	}
	if phases[1].Transmissions != 1 || phases[1].Deliveries != 1 ||
		phases[1].FirstReceives != 1 {
		t.Fatalf("phase 1 stats wrong: %+v", phases[1])
	}
	if phases[2].Collisions != 1 || phases[2].Cancels != 1 {
		t.Fatalf("phase 2 stats wrong: %+v", phases[2])
	}
	tot := c.Totals()
	if tot.Transmissions != 1 || tot.Deliveries != 1 || tot.Collisions != 1 ||
		tot.FirstReceives != 1 || tot.Cancels != 1 {
		t.Fatalf("totals wrong: %+v", tot)
	}
}

func TestCollectorCollisionRate(t *testing.T) {
	var c Collector
	if c.CollisionRate() != 0 {
		t.Fatal("silent channel should have rate 0")
	}
	c.Record(Event{Kind: KindDeliver})
	c.Record(Event{Kind: KindCollision})
	c.Record(Event{Kind: KindCollision})
	if got := c.CollisionRate(); got != 2.0/3 {
		t.Fatalf("collision rate = %v, want 2/3", got)
	}
}

func TestCollectorEventCap(t *testing.T) {
	c := Collector{Cap: 2}
	for i := 0; i < 5; i++ {
		c.Record(Event{Kind: KindTx, Node: int32(i)})
	}
	if len(c.Events()) != 2 {
		t.Fatalf("retained %d events, want 2", len(c.Events()))
	}
	if c.Dropped() != 3 {
		t.Fatalf("dropped = %d, want 3", c.Dropped())
	}
	// Stats still count everything.
	if c.Totals().Transmissions != 5 {
		t.Fatalf("stats should see all events: %+v", c.Totals())
	}
}

func TestCollectorZeroCapRetainsNothing(t *testing.T) {
	var c Collector
	c.Record(Event{Kind: KindTx})
	if len(c.Events()) != 0 || c.Dropped() != 0 {
		t.Fatal("zero-cap collector should retain nothing and not count drops")
	}
}
