// Package viz renders series as plain-text charts, so the experiment
// reports can show the paper's curves — bell-shaped reachability, the
// falling optimal probability — directly in a terminal or a text file.
package viz

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// glyphs mark successive series in a chart.
var glyphs = []rune{'*', 'o', '+', 'x', '#', '@', '%', '~'}

// Chart is a fixed-size text canvas with data-space scaling.
type Chart struct {
	Title  string
	Width  int // plot columns (default 60)
	Height int // plot rows (default 16)
	XLabel string
	YLabel string

	names  []string
	series map[string][2][]float64 // name -> (xs, ys)
}

// NewChart returns a chart with default geometry.
func NewChart(title string) *Chart {
	return &Chart{Title: title, Width: 60, Height: 16,
		series: map[string][2][]float64{}}
}

// Add registers one named series. xs and ys must have equal lengths;
// NaN entries are skipped at render time.
func (c *Chart) Add(name string, xs, ys []float64) error {
	if len(xs) != len(ys) {
		return fmt.Errorf("viz: series %q has %d xs but %d ys", name, len(xs), len(ys))
	}
	if _, dup := c.series[name]; dup {
		return fmt.Errorf("viz: duplicate series %q", name)
	}
	c.names = append(c.names, name)
	c.series[name] = [2][]float64{xs, ys}
	return nil
}

// bounds computes the finite data range across all series.
func (c *Chart) bounds() (xMin, xMax, yMin, yMax float64, ok bool) {
	xMin, yMin = math.Inf(1), math.Inf(1)
	xMax, yMax = math.Inf(-1), math.Inf(-1)
	for _, s := range c.series {
		xs, ys := s[0], s[1]
		for i := range xs {
			if math.IsNaN(xs[i]) || math.IsNaN(ys[i]) {
				continue
			}
			xMin = math.Min(xMin, xs[i])
			xMax = math.Max(xMax, xs[i])
			yMin = math.Min(yMin, ys[i])
			yMax = math.Max(yMax, ys[i])
			ok = true
		}
	}
	//lint:ignore floateq widening a degenerate axis needs bitwise equality: any epsilon would also widen valid near-flat ranges
	if xMax == xMin {
		xMax = xMin + 1
	}
	//lint:ignore floateq widening a degenerate axis needs bitwise equality: any epsilon would also widen valid near-flat ranges
	if yMax == yMin {
		yMax = yMin + 1
	}
	return xMin, xMax, yMin, yMax, ok
}

// Render draws the chart.
func (c *Chart) Render() string {
	w, h := c.Width, c.Height
	if w < 10 {
		w = 10
	}
	if h < 4 {
		h = 4
	}
	xMin, xMax, yMin, yMax, ok := c.bounds()
	var b strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&b, "%s\n", c.Title)
	}
	if !ok {
		b.WriteString("(no data)\n")
		return b.String()
	}

	grid := make([][]rune, h)
	for r := range grid {
		grid[r] = make([]rune, w)
		for col := range grid[r] {
			grid[r][col] = ' '
		}
	}
	names := append([]string(nil), c.names...)
	sort.Strings(names)
	for si, name := range names {
		g := glyphs[si%len(glyphs)]
		s := c.series[name]
		xs, ys := s[0], s[1]
		for i := range xs {
			if math.IsNaN(xs[i]) || math.IsNaN(ys[i]) {
				continue
			}
			col := int(math.Round((xs[i] - xMin) / (xMax - xMin) * float64(w-1)))
			row := h - 1 - int(math.Round((ys[i]-yMin)/(yMax-yMin)*float64(h-1)))
			if col >= 0 && col < w && row >= 0 && row < h {
				grid[row][col] = g
			}
		}
	}

	yTop := fmt.Sprintf("%.3g", yMax)
	yBot := fmt.Sprintf("%.3g", yMin)
	pad := len(yTop)
	if len(yBot) > pad {
		pad = len(yBot)
	}
	for r := 0; r < h; r++ {
		label := strings.Repeat(" ", pad)
		if r == 0 {
			label = fmt.Sprintf("%*s", pad, yTop)
		}
		if r == h-1 {
			label = fmt.Sprintf("%*s", pad, yBot)
		}
		fmt.Fprintf(&b, "%s |%s\n", label, string(grid[r]))
	}
	fmt.Fprintf(&b, "%s +%s\n", strings.Repeat(" ", pad), strings.Repeat("-", w))
	xl := fmt.Sprintf("%.3g", xMin)
	xr := fmt.Sprintf("%.3g", xMax)
	gap := w - len(xl) - len(xr)
	if gap < 1 {
		gap = 1
	}
	fmt.Fprintf(&b, "%s %s%s%s\n", strings.Repeat(" ", pad), xl,
		strings.Repeat(" ", gap), xr)
	if c.XLabel != "" || c.YLabel != "" {
		fmt.Fprintf(&b, "%s x: %s  y: %s\n", strings.Repeat(" ", pad), c.XLabel, c.YLabel)
	}
	for si, name := range names {
		fmt.Fprintf(&b, "%s %c %s\n", strings.Repeat(" ", pad), glyphs[si%len(glyphs)], name)
	}
	return b.String()
}
