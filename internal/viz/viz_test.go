package viz

import (
	"math"
	"strings"
	"testing"
)

func TestChartBasicRender(t *testing.T) {
	c := NewChart("demo")
	if err := c.Add("line", []float64{0, 1, 2}, []float64{0, 1, 2}); err != nil {
		t.Fatal(err)
	}
	out := c.Render()
	if !strings.Contains(out, "demo") {
		t.Fatal("title missing")
	}
	if !strings.Contains(out, "*") {
		t.Fatal("glyph missing")
	}
	if !strings.Contains(out, "line") {
		t.Fatal("legend missing")
	}
	// Axis labels carry the data range.
	if !strings.Contains(out, "0") || !strings.Contains(out, "2") {
		t.Fatal("axis range labels missing")
	}
}

func TestChartRisingLinePlacement(t *testing.T) {
	c := NewChart("")
	c.Width, c.Height = 20, 10
	_ = c.Add("up", []float64{0, 1}, []float64{0, 1})
	lines := strings.Split(strings.TrimRight(c.Render(), "\n"), "\n")
	// First plot row holds the maximum (right end), the last plot row
	// the minimum (left end).
	top, bottom := lines[0], lines[9]
	if !strings.Contains(top, "*") {
		t.Fatalf("top row missing the max point: %q", top)
	}
	if !strings.Contains(bottom, "*") {
		t.Fatalf("bottom row missing the min point: %q", bottom)
	}
	if strings.Index(top, "*") <= strings.Index(bottom, "*") {
		t.Fatal("rising line should place max to the right of min")
	}
}

func TestChartMultipleSeriesGlyphs(t *testing.T) {
	c := NewChart("two")
	_ = c.Add("a", []float64{0, 1}, []float64{0, 0.2})
	_ = c.Add("b", []float64{0, 1}, []float64{1, 0.8})
	out := c.Render()
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Fatalf("expected two glyphs:\n%s", out)
	}
}

func TestChartValidation(t *testing.T) {
	c := NewChart("bad")
	if err := c.Add("x", []float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch should error")
	}
	if err := c.Add("dup", []float64{1}, []float64{1}); err != nil {
		t.Fatal(err)
	}
	if err := c.Add("dup", []float64{1}, []float64{1}); err == nil {
		t.Fatal("duplicate name should error")
	}
}

func TestChartNoData(t *testing.T) {
	c := NewChart("empty")
	out := c.Render()
	if !strings.Contains(out, "no data") {
		t.Fatalf("empty chart should say so:\n%s", out)
	}
	_ = c.Add("nan", []float64{math.NaN()}, []float64{math.NaN()})
	if out := c.Render(); !strings.Contains(out, "no data") {
		t.Fatalf("all-NaN chart should say so:\n%s", out)
	}
}

func TestChartNaNPointsSkipped(t *testing.T) {
	c := NewChart("gaps")
	_ = c.Add("s", []float64{0, 1, 2}, []float64{0, math.NaN(), 2})
	out := c.Render()
	// Two plotted points plus one legend glyph.
	if strings.Count(out, "*") != 3 {
		t.Fatalf("expected 2 plotted points + legend:\n%s", out)
	}
}

func TestChartDegenerateRange(t *testing.T) {
	c := NewChart("flat")
	_ = c.Add("s", []float64{1, 1}, []float64{5, 5})
	out := c.Render()
	if !strings.Contains(out, "*") {
		t.Fatalf("flat data should still plot:\n%s", out)
	}
}

func TestChartMinimumGeometry(t *testing.T) {
	c := NewChart("tiny")
	c.Width, c.Height = 1, 1
	_ = c.Add("s", []float64{0, 1}, []float64{0, 1})
	out := c.Render()
	if len(out) == 0 {
		t.Fatal("tiny chart should clamp geometry and render")
	}
}

func TestChartAxisLabels(t *testing.T) {
	c := NewChart("labels")
	c.XLabel, c.YLabel = "p", "reach"
	_ = c.Add("s", []float64{0, 1}, []float64{0, 1})
	out := c.Render()
	if !strings.Contains(out, "x: p") || !strings.Contains(out, "y: reach") {
		t.Fatalf("axis labels missing:\n%s", out)
	}
}
