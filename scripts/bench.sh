#!/usr/bin/env sh
# bench.sh runs the repo's key benchmarks and writes the perf
# trajectory snapshot BENCH_<n>.json (ns/op, B/op, allocs/op per
# bench, plus a loadgen latency section). The micro-bench set covers
# the hot paths the snapshot tracks: the slot-aligned simulator
# (SimulatorDenseFlooding), the analytic surface behind Fig. 4
# (Fig4Reachability), the simulated sweep behind Fig. 8
# (Fig8SimReachability), the engine-scheduled campaign
# (EngineCampaign), the cross-scheme channel-model shootout
# (ShootoutCampaign), and the serving fast path (ServeOptimal /
# ServeSurfaceRow / ServeSurfaceFull — steady-state snapshot hits).
#
# The latency tier then boots a real `experiments -serve` over a
# warmed quick cache, drives it with cmd/loadgen (closed loop, mixed
# query distribution), and merges the p50/p90/p99 percentiles into the
# snapshot's "latency" section, which cmd/benchgate gates alongside
# the micro-benches.
#
# Usage: scripts/bench.sh [output.json] [benchtime]
#   output.json defaults to BENCH.json in the repo root
#   benchtime   defaults to 1x (raise, e.g. 5x, for steadier numbers)
set -eu
cd "$(dirname "$0")/.."

out="${1:-BENCH.json}"
benchtime="${2:-1x}"

pattern='BenchmarkSimulatorDenseFlooding$|BenchmarkFig4Reachability$|BenchmarkFig8SimReachability$|BenchmarkEngineCampaign/workers=1$|BenchmarkShootoutCampaign$|BenchmarkServeOptimal$|BenchmarkServeSurfaceRow$|BenchmarkServeSurfaceFull$|BenchmarkServeShootoutCell$'

echo "== bench: $pattern (benchtime=$benchtime)" >&2
go test -run=NONE -bench="$pattern" -benchtime="$benchtime" -benchmem . ./internal/serve/ |
	tee /dev/stderr |
	awk -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" '
		/^Benchmark/ && NF >= 7 {
			name = $1
			sub(/-[0-9]+$/, "", name)
			sub(/^Benchmark/, "", name)
			benches[++n] = sprintf(\
				"    {\"name\": \"%s\", \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}",
				name, $3, $5, $7)
		}
		END {
			if (n == 0) { print "bench.sh: no benchmark lines parsed" > "/dev/stderr"; exit 1 }
			printf "{\n  \"date\": \"%s\",\n  \"benchtime\": \"'"$benchtime"'\",\n  \"benchmarks\": [\n", date
			for (i = 1; i <= n; i++) printf "%s%s\n", benches[i], (i < n ? "," : "")
			printf "  ]\n}\n"
		}
	' > "$out"

echo "== latency tier: loadgen against a warmed -serve instance" >&2
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"; [ -z "${serve_pid:-}" ] || kill "$serve_pid" 2>/dev/null || true' EXIT
go build -o "$tmp/experiments" ./cmd/experiments
go build -o "$tmp/loadgen" ./cmd/loadgen
"$tmp/experiments" -figure fig4 -quick -cache-dir "$tmp/cache" >/dev/null
"$tmp/experiments" -quick -cache-dir "$tmp/cache" -serve 127.0.0.1:0 \
    -dist-addr-file "$tmp/addr" 2>/dev/null &
serve_pid=$!
i=0
while [ ! -s "$tmp/addr" ]; do
    i=$((i + 1))
    [ "$i" -le 100 ] || { echo "bench.sh: -serve never published its address" >&2; exit 1; }
    sleep 0.1
done
"$tmp/loadgen" -url "http://$(cat "$tmp/addr")" -surfaces analytic -quick \
    -name serve-analytic -qps 200 -duration 3s -out "$tmp/loadgen.json" \
    -bench-merge "$out" >/dev/null
kill -INT "$serve_pid"
wait "$serve_pid"
serve_pid=""

echo "wrote $out" >&2
