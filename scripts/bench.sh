#!/usr/bin/env sh
# bench.sh runs the repo's key benchmarks and writes the perf
# trajectory snapshot BENCH_<n>.json (ns/op, B/op, allocs/op per
# bench). The four benches cover the hot paths the snapshot tracks:
# the slot-aligned simulator (SimulatorDenseFlooding), the analytic
# surface behind Fig. 4 (Fig4Reachability), the simulated sweep behind
# Fig. 8 (Fig8SimReachability), and the engine-scheduled campaign
# (EngineCampaign).
#
# Usage: scripts/bench.sh [output.json] [benchtime]
#   output.json defaults to BENCH.json in the repo root
#   benchtime   defaults to 1x (raise, e.g. 5x, for steadier numbers)
set -eu
cd "$(dirname "$0")/.."

out="${1:-BENCH.json}"
benchtime="${2:-1x}"

pattern='BenchmarkSimulatorDenseFlooding$|BenchmarkFig4Reachability$|BenchmarkFig8SimReachability$|BenchmarkEngineCampaign/workers=1$'

echo "== bench: $pattern (benchtime=$benchtime)" >&2
go test -run=NONE -bench="$pattern" -benchtime="$benchtime" -benchmem . |
	tee /dev/stderr |
	awk -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" '
		/^Benchmark/ && NF >= 7 {
			name = $1
			sub(/-[0-9]+$/, "", name)
			sub(/^Benchmark/, "", name)
			benches[++n] = sprintf(\
				"    {\"name\": \"%s\", \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}",
				name, $3, $5, $7)
		}
		END {
			if (n == 0) { print "bench.sh: no benchmark lines parsed" > "/dev/stderr"; exit 1 }
			printf "{\n  \"date\": \"%s\",\n  \"benchtime\": \"'"$benchtime"'\",\n  \"benchmarks\": [\n", date
			for (i = 1; i <= n; i++) printf "%s%s\n", benches[i], (i < n ? "," : "")
			printf "  ]\n}\n"
		}
	' > "$out"

echo "wrote $out" >&2
