#!/usr/bin/env sh
# check.sh runs the full verification ladder. Tier 1 is the build/test
# contract every PR must keep green; tier 2 adds vet, the race detector
# (campaigns execute on the concurrent engine pool), shuffled test
# ordering (catches inter-test state leaks in cached engines and fault
# plans), and sensorlint, the repo-specific static-analysis pass that
# enforces the determinism, seed-derivation, and context invariants
# (see internal/lint).
set -eu
cd "$(dirname "$0")/.."

echo "== tier 1: go build ./... && go test ./..."
go build ./...
go test ./...

echo "== tier 2: go vet ./..."
go vet ./...

echo "== tier 2: go test -race ./..."
go test -race ./...

echo "== tier 2: go test -shuffle=on ./..."
go test -shuffle=on ./...

echo "== tier 2: go run ./cmd/sensorlint ./..."
go run ./cmd/sensorlint ./...

echo "== tier 2: bench smoke (hot loop still runs under the bench harness)"
go test -run=NONE -bench=SimulatorDenseFlooding -benchtime=1x .

echo "== tier 2: two-process shard + merge smoke (fig4)"
# Two concurrent shard processes populate one cache directory; the
# merge assembles the figure strictly from the cache and must render
# byte-identically to a direct single-process run.
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
go build -o "$tmp/experiments" ./cmd/experiments
"$tmp/experiments" -figure fig4 -quick -out "$tmp/direct.txt"
"$tmp/experiments" -figure fig4 -quick -cache-dir "$tmp/cache" -shard 0/2 &
shard0=$!
"$tmp/experiments" -figure fig4 -quick -cache-dir "$tmp/cache" -shard 1/2
wait "$shard0"
"$tmp/experiments" -figure fig4 -quick -cache-dir "$tmp/cache" -merge 2 -out "$tmp/merged.txt"
cmp "$tmp/direct.txt" "$tmp/merged.txt"

echo "all checks passed"
