#!/usr/bin/env sh
# check.sh runs the full verification ladder. Tier 1 is the build/test
# contract every PR must keep green; tier 2 adds vet, the race detector
# (campaigns execute on the concurrent engine pool), shuffled test
# ordering (catches inter-test state leaks in cached engines and fault
# plans), and sensorlint, the repo-specific static-analysis pass that
# enforces the determinism, seed-derivation, and context invariants
# (see internal/lint).
set -eu
cd "$(dirname "$0")/.."

# Machine-readable run records (the sensorlint findings artifact and
# the fresh bench snapshot the gate compares) are archived side by
# side under artifacts/, which is gitignored.
mkdir -p artifacts

echo "== tier 1: go build ./... && go test ./..."
go build ./...
go test ./...

echo "== tier 2: go vet ./..."
go vet ./...

echo "== tier 2: go test -race ./..."
go test -race ./...

echo "== tier 2: go test -shuffle=on ./..."
go test -shuffle=on ./...

echo "== tier 2: go run ./cmd/sensorlint ./... (ratchet + findings artifact)"
# The committed baseline is empty on main (TestDriverRepoIsClean
# asserts it); passing it anyway keeps this the one canonical
# invocation for forks that do carry frozen debt.
go run ./cmd/sensorlint -baseline sensorlint.baseline \
    -artifact artifacts/sensorlint.json ./...

echo "== tier 2: bench regression gate (smoke run vs latest committed BENCH_<n>.json)"
# A 1x smoke run is noisy on wall-clock, so the gate's ns/op tolerance
# is loose; allocs/op is nearly deterministic and gated tightly. See
# internal/bench for the ratios.
scripts/bench.sh artifacts/bench.json 1x
latest_bench="$(ls BENCH_*.json | sort -t_ -k2 -n | tail -1)"
go run ./cmd/benchgate -baseline "$latest_bench" -current artifacts/bench.json

echo "== tier 2: two-process shard + merge smoke (fig4)"
# Two concurrent shard processes populate one cache directory; the
# merge assembles the figure strictly from the cache and must render
# byte-identically to a direct single-process run.
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"; [ -z "${serve_pid:-}" ] || kill "$serve_pid" 2>/dev/null || true' EXIT
go build -o "$tmp/experiments" ./cmd/experiments
"$tmp/experiments" -figure fig4 -quick -out "$tmp/direct.txt"
"$tmp/experiments" -figure fig4 -quick -cache-dir "$tmp/cache" -shard 0/2 &
shard0=$!
"$tmp/experiments" -figure fig4 -quick -cache-dir "$tmp/cache" -shard 1/2
wait "$shard0"
"$tmp/experiments" -figure fig4 -quick -cache-dir "$tmp/cache" -merge 2 -out "$tmp/merged.txt"
cmp "$tmp/direct.txt" "$tmp/merged.txt"

echo "== tier 2: sharded shootout slice smoke (one density, CFM/CAM/SINR columns)"
# A one-density slice of the cross-scheme shootout campaign through the
# same shard/merge machinery: two shard processes fill one cache, and
# the merged figure must render byte-identically to the direct run.
"$tmp/experiments" -figure shootout -quick -shoot-rhos 30 -out "$tmp/shoot-direct.txt"
"$tmp/experiments" -figure shootout -quick -shoot-rhos 30 \
    -cache-dir "$tmp/shootcache" -shard 0/2 &
shard0=$!
"$tmp/experiments" -figure shootout -quick -shoot-rhos 30 \
    -cache-dir "$tmp/shootcache" -shard 1/2
wait "$shard0"
"$tmp/experiments" -figure shootout -quick -shoot-rhos 30 \
    -cache-dir "$tmp/shootcache" -merge 2 -out "$tmp/shoot-merged.txt"
cmp "$tmp/shoot-direct.txt" "$tmp/shoot-merged.txt"

echo "== tier 2: merge -json missing-shard smoke"
# An empty cache must fail the merge with exit 3 and emit the missing
# shard set machine-readably on stdout.
set +e
"$tmp/experiments" -figure fig4 -quick -cache-dir "$tmp/empty" -merge 2 -json \
    >"$tmp/missing.json" 2>/dev/null
json_rc=$?
set -e
[ "$json_rc" -eq 3 ] || { echo "merge -json on empty cache exited $json_rc, want 3" >&2; exit 1; }
grep -q '"missingShards"' "$tmp/missing.json"
grep -q '"fingerprint"' "$tmp/missing.json"

echo "== tier 2: coordinator + 2-worker distributed smoke (fig4, one worker dies mid-run)"
# A coordinator leases the fig4 job set to two workers. One worker is
# fault-injected (-worker-fail-after) to exit while holding a lease;
# the lease expires, fails over to the survivor, and the merged figure
# must still be byte-identical to the direct single-process run.
"$tmp/experiments" -figure fig4 -quick -cache-dir "$tmp/dcache" \
    -coordinator 127.0.0.1:0 -dist-shards 2 -lease-ttl 2s \
    -dist-addr-file "$tmp/addr" &
coord=$!
i=0
while [ ! -s "$tmp/addr" ]; do
    i=$((i + 1))
    [ "$i" -le 100 ] || { echo "coordinator never published its address" >&2; exit 1; }
    sleep 0.1
done
url="http://$(cat "$tmp/addr")"
set +e
"$tmp/experiments" -figure fig4 -quick -worker "$url" -worker-id w-dying -worker-fail-after 1
dying_rc=$?
set -e
[ "$dying_rc" -eq 7 ] || { echo "fault-injected worker exited $dying_rc, want 7" >&2; exit 1; }
"$tmp/experiments" -figure fig4 -quick -worker "$url" -worker-id w-survivor
wait "$coord"
"$tmp/experiments" -figure fig4 -quick -cache-dir "$tmp/dcache" -merge 2 -out "$tmp/dist.txt"
cmp "$tmp/direct.txt" "$tmp/dist.txt"

echo "== tier 2: chaos-transport distributed smoke (fig4, hostile faults, one worker dies)"
# The same campaign under a seed-deterministic hostile transport: both
# workers' HTTP clients drop, delay, duplicate, truncate, and corrupt
# traffic (-chaos-profile hostile). The run must still converge, the
# coordinator must report zero duplicate cache ingests (every replayed
# delivery absorbed at the protocol layer), and the merge must stay
# byte-identical to the direct run.
"$tmp/experiments" -figure fig4 -quick -cache-dir "$tmp/ccache" \
    -coordinator 127.0.0.1:0 -dist-shards 2 -lease-ttl 2s \
    -dist-addr-file "$tmp/caddr" -out "$tmp/coord-report.txt" &
coord=$!
i=0
while [ ! -s "$tmp/caddr" ]; do
    i=$((i + 1))
    [ "$i" -le 100 ] || { echo "chaos coordinator never published its address" >&2; exit 1; }
    sleep 0.1
done
url="http://$(cat "$tmp/caddr")"
set +e
"$tmp/experiments" -figure fig4 -quick -worker "$url" -worker-id w-chaos-dying \
    -worker-fail-after 1 -chaos-profile hostile -chaos-seed 42 2>/dev/null
dying_rc=$?
set -e
[ "$dying_rc" -eq 7 ] || { echo "chaos fault-injected worker exited $dying_rc, want 7" >&2; exit 1; }
"$tmp/experiments" -figure fig4 -quick -worker "$url" -worker-id w-chaos-survivor \
    -chaos-profile hostile -chaos-seed 43 2>/dev/null
wait "$coord"
grep -q " 0 dup-ingests" "$tmp/coord-report.txt" || {
    echo "chaos run leaked duplicate ingests past the protocol layer:" >&2
    cat "$tmp/coord-report.txt" >&2
    exit 1
}
"$tmp/experiments" -figure fig4 -quick -cache-dir "$tmp/ccache" -merge 2 -out "$tmp/chaos.txt"
cmp "$tmp/direct.txt" "$tmp/chaos.txt"

echo "== tier 2: serve load smoke (loadgen burst against -serve over the warm cache)"
# The snapshot-serving tier over the fig4-warmed cache from the shard
# smoke: a short closed-loop loadgen burst must complete with zero
# errors and a generous p99 bound, and SIGINT must shut the server
# down gracefully (exit 0). The loadgen report is archived.
go build -o "$tmp/loadgen" ./cmd/loadgen
"$tmp/experiments" -quick -cache-dir "$tmp/cache" -serve 127.0.0.1:0 \
    -dist-addr-file "$tmp/serveaddr" 2>"$tmp/serve.log" &
serve_pid=$!
i=0
while [ ! -s "$tmp/serveaddr" ]; do
    i=$((i + 1))
    [ "$i" -le 100 ] || { echo "-serve never published its address" >&2; cat "$tmp/serve.log" >&2; exit 1; }
    sleep 0.1
done
"$tmp/loadgen" -url "http://$(cat "$tmp/serveaddr")" -surfaces analytic -quick \
    -qps 150 -duration 2s -name serve-smoke \
    -max-error-rate 0 -max-p99 750ms -out artifacts/loadgen.json
kill -INT "$serve_pid"
wait "$serve_pid" || { echo "-serve did not shut down cleanly" >&2; cat "$tmp/serve.log" >&2; exit 1; }
serve_pid=""

echo "all checks passed"
